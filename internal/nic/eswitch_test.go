package nic

import (
	"testing"

	"flexdriver/internal/netpkt"
	"flexdriver/internal/sim"
)

func u16(v uint16) *uint16 { return &v }
func u32(v uint32) *uint32 { return &v }
func u8v(v uint8) *uint8   { return &v }
func bp(v bool) *bool      { return &v }
func ipp(v netpkt.IP) *netpkt.IP {
	return &v
}

// encapVXLAN wraps an inner frame for tests.
func encapVXLAN(inner []byte, vni uint32, srcID, dstID int) []byte {
	vx := netpkt.VXLAN{VNI: vni}
	l5 := append(vx.Marshal(nil), inner...)
	udp := netpkt.UDP{SrcPort: 33333, DstPort: netpkt.VXLANPort, Length: uint16(netpkt.UDPHeaderLen + len(l5))}
	l4 := append(udp.Marshal(nil), l5...)
	ip := netpkt.IPv4{TotalLen: uint16(netpkt.IPv4HeaderLen + len(l4)), Proto: netpkt.ProtoUDP,
		Src: netpkt.IPFrom(srcID), Dst: netpkt.IPFrom(dstID)}
	l3 := append(ip.Marshal(nil), l4...)
	eth := netpkt.Eth{Dst: netpkt.MACFrom(dstID), Src: netpkt.MACFrom(srcID), EtherType: netpkt.EtherTypeIPv4}
	return append(eth.Marshal(nil), l3...)
}

func TestMatchFields(t *testing.T) {
	frame := buildFrame(1, 2, 1111, 2222, 100)
	v := parseView(frame, 42)
	cases := []struct {
		name string
		m    Match
		want bool
	}{
		{"wildcard", Match{}, true},
		{"ethertype", Match{EtherType: u16(netpkt.EtherTypeIPv4)}, true},
		{"ethertype-miss", Match{EtherType: u16(0x86dd)}, false},
		{"proto", Match{Proto: u8v(netpkt.ProtoUDP)}, true},
		{"proto-miss", Match{Proto: u8v(netpkt.ProtoTCP)}, false},
		{"dstport", Match{DstPort: u16(2222)}, true},
		{"srcport-miss", Match{SrcPort: u16(9)}, false},
		{"srcip", Match{SrcIP: ipp(netpkt.IPFrom(1))}, true},
		{"dstip-miss", Match{DstIP: ipp(netpkt.IPFrom(9))}, false},
		{"notfrag", Match{IsFragment: bp(false)}, true},
		{"frag-miss", Match{IsFragment: bp(true)}, false},
		{"flowtag", Match{FlowTag: u32(42)}, true},
		{"flowtag-miss", Match{FlowTag: u32(41)}, false},
	}
	for _, c := range cases {
		if got := c.m.Matches(v); got != c.want {
			t.Errorf("%s: match=%v want %v", c.name, got, c.want)
		}
	}
}

func TestMatchVNI(t *testing.T) {
	inner := buildFrame(3, 4, 7, 8, 64)
	outer := encapVXLAN(inner, 0x1234, 1, 2)
	v := parseView(outer, 0)
	if !(Match{VNI: u32(0x1234)}).Matches(v) {
		t.Fatal("VNI match failed")
	}
	if (Match{VNI: u32(0x9999)}).Matches(v) {
		t.Fatal("wrong VNI matched")
	}
}

func TestFragmentHasNoL4Match(t *testing.T) {
	frame := buildFrame(1, 2, 1111, 2222, 3000)
	frags, err := netpkt.FragmentEth(frame, 1500)
	if err != nil || len(frags) < 2 {
		t.Fatalf("fragmentation failed: %v", err)
	}
	// First fragment still exposes L4 ports; later ones must not.
	v1 := parseView(frags[1], 0)
	if (Match{DstPort: u16(2222)}).Matches(v1) {
		t.Fatal("non-first fragment matched on L4 port")
	}
	if !(Match{IsFragment: bp(true)}).Matches(v1) {
		t.Fatal("fragment not detected")
	}
}

func TestVXLANDecapThenDeliver(t *testing.T) {
	eng, a, b, _ := twoNodes(t)
	dsq, drq, cqes, bufBase := setupEthTxRx(t, a, b, 0)
	// Replace default rule: decap VXLAN traffic before delivery.
	b.nic.ESwitch().ClearTable(0)
	rq := drq.rq
	b.nic.ESwitch().AddRule(0, Rule{
		Match:  Match{DstPort: u16(netpkt.VXLANPort)},
		Action: Action{Decap: true, Count: "decap", ToRQ: rq},
	})
	b.nic.ESwitch().AddRule(0, Rule{Action: Action{Drop: true}})
	drq.post(b.fab.AddrOf(b.mem, bufBase), 2048, 0)

	inner := buildFrame(5, 6, 777, 888, 200)
	outer := encapVXLAN(inner, 99, 1, 2)
	fbuf := a.mem.Alloc(2048, 64)
	a.mem.WriteAt(fbuf, outer)
	dsq.post(SendWQE{Opcode: OpSend, Addr: a.fab.AddrOf(a.mem, fbuf), Len: uint32(len(outer))})
	dsq.doorbell()
	eng.Run()

	if len(*cqes) != 1 {
		t.Fatalf("CQEs = %d", len(*cqes))
	}
	if int((*cqes)[0].ByteCount) != len(inner) {
		t.Fatalf("delivered %d bytes, want inner %d", (*cqes)[0].ByteCount, len(inner))
	}
	got := b.mem.ReadAt(bufBase, len(inner))
	if string(got) != string(inner) {
		t.Fatal("decapsulated frame mismatch")
	}
	if b.nic.ESwitch().Counters["decap"] != 1 {
		t.Fatal("counter not incremented")
	}
}

func TestFlowTagStamping(t *testing.T) {
	eng, a, b, _ := twoNodes(t)
	dsq, drq, cqes, bufBase := setupEthTxRx(t, a, b, 0)
	b.nic.ESwitch().ClearTable(0)
	b.nic.ESwitch().AddRule(0, Rule{
		Match:  Match{SrcIP: ipp(netpkt.IPFrom(1))},
		Action: Action{SetFlowTag: u32(7), ToRQ: drq.rq},
	})
	drq.post(b.fab.AddrOf(b.mem, bufBase), 2048, 0)
	frame := buildFrame(1, 2, 5, 6, 64)
	fbuf := a.mem.Alloc(2048, 64)
	a.mem.WriteAt(fbuf, frame)
	dsq.post(SendWQE{Opcode: OpSend, Addr: a.fab.AddrOf(a.mem, fbuf), Len: uint32(len(frame))})
	dsq.doorbell()
	eng.Run()
	if len(*cqes) != 1 || (*cqes)[0].FlowTag != 7 {
		t.Fatalf("flow tag not stamped: %+v", *cqes)
	}
}

func TestTIRSpreadsByRSS(t *testing.T) {
	eng, a, b, _ := twoNodes(t)
	dsq, _, _, _ := setupEthTxRx(t, a, b, 0)

	// Build 4 RQs under one TIR.
	var rqs []*RQ
	var perRQ [4]int
	cqRing := b.mem.Alloc(1024*CQESize, 64)
	for i := 0; i < 4; i++ {
		i := i
		cq := b.nic.CreateCQ(CQConfig{Ring: b.fab.AddrOf(b.mem, cqRing), Size: 1024,
			OnCQE: func(CQE) { perRQ[i]++ }})
		ring := b.mem.Alloc(64*RecvWQESize, 64)
		rq := b.nic.CreateRQ(RQConfig{Ring: b.fab.AddrOf(b.mem, ring), Size: 64, CQ: cq})
		d := &driverRQ{nd: b, rq: rq, ring: ring}
		buf := b.mem.Alloc(64*2048, 4096)
		for j := 0; j < 32; j++ {
			d.post(b.fab.AddrOf(b.mem, buf+uint64(j)*2048), 2048, 0)
		}
		rqs = append(rqs, rq)
	}
	b.nic.ESwitch().ClearTable(0)
	b.nic.ESwitch().AddRule(0, Rule{Action: Action{ToTIR: &TIR{RQs: rqs}}})

	// 64 distinct flows.
	fbuf := a.mem.Alloc(1<<20, 64)
	off := uint64(0)
	for f := 0; f < 64; f++ {
		frame := buildFrame(1, 2, uint16(1000+f), 80, 64)
		a.mem.WriteAt(fbuf+off, frame)
		dsq.post(SendWQE{Opcode: OpSend, Addr: a.fab.AddrOf(a.mem, fbuf+off), Len: uint32(len(frame))})
		off += 256
	}
	dsq.doorbell()
	eng.Run()

	total, nonEmpty := 0, 0
	for _, c := range perRQ {
		total += c
		if c > 0 {
			nonEmpty++
		}
	}
	if total != 64 {
		t.Fatalf("delivered %d, want 64", total)
	}
	if nonEmpty < 3 {
		t.Fatalf("RSS spread poor: %v", perRQ)
	}
}

func TestHairpinVPortLoopback(t *testing.T) {
	// Single node: traffic sent by vport A loops back to vport B's RQ —
	// the paper's local experiment topology.
	eng := sim.NewEngine()
	a := newNode(t, eng)

	var cqes []CQE
	cqRing := a.mem.Alloc(64*CQESize, 64)
	rcq := a.nic.CreateCQ(CQConfig{Ring: a.fab.AddrOf(a.mem, cqRing), Size: 64,
		OnCQE: func(c CQE) { cqes = append(cqes, c) }})
	rqRing := a.mem.Alloc(64*RecvWQESize, 64)
	rq := a.nic.CreateRQ(RQConfig{Ring: a.fab.AddrOf(a.mem, rqRing), Size: 64, CQ: rcq})
	drq := &driverRQ{nd: a, rq: rq, ring: rqRing}

	vpA := a.nic.ESwitch().AddVPort()
	vpB := a.nic.ESwitch().AddVPort()
	a.nic.ESwitch().AddRule(vpA.EgressTable, Rule{Action: Action{ToVPort: &vpB.ID}})
	a.nic.ESwitch().AddRule(vpB.IngressTable, Rule{Action: Action{ToRQ: rq}})

	scqRing := a.mem.Alloc(64*CQESize, 64)
	scq := a.nic.CreateCQ(CQConfig{Ring: a.fab.AddrOf(a.mem, scqRing), Size: 64})
	sqRing := a.mem.Alloc(64*SendWQESize, 64)
	sq := a.nic.CreateSQ(SQConfig{Ring: a.fab.AddrOf(a.mem, sqRing), Size: 64, CQ: scq, VPort: vpA})
	dsq := &driverSQ{nd: a, sq: sq, ring: sqRing}

	buf := a.mem.Alloc(4096, 64)
	drq.post(a.fab.AddrOf(a.mem, buf), 2048, 0)
	frame := buildFrame(1, 1, 10, 20, 300)
	fbuf := a.mem.Alloc(2048, 64)
	a.mem.WriteAt(fbuf, frame)
	dsq.post(SendWQE{Opcode: OpSend, Signal: true, Addr: a.fab.AddrOf(a.mem, fbuf), Len: uint32(len(frame))})
	dsq.doorbell()
	eng.Run()

	if len(cqes) != 1 || int(cqes[0].ByteCount) != len(frame) {
		t.Fatalf("hairpin delivery failed: %v", cqes)
	}
	if a.nic.Stats.TxPackets != 1 {
		t.Fatalf("tx counter = %d", a.nic.Stats.TxPackets)
	}
}

func TestPolicerDrops(t *testing.T) {
	eng, a, b, _ := twoNodes(t)
	dsq, drq, cqes, bufBase := setupEthTxRx(t, a, b, 0)
	// Policer admitting ~one 150 B packet then empty (tiny burst).
	pol := sim.NewTokenBucket(eng, 1*sim.Gbps, 200)
	b.nic.ESwitch().ClearTable(0)
	b.nic.ESwitch().AddRule(0, Rule{Action: Action{Policer: pol, ToRQ: drq.rq}})
	for i := 0; i < 8; i++ {
		drq.post(b.fab.AddrOf(b.mem, bufBase+uint64(i)*2048), 2048, 0)
	}
	frame := buildFrame(1, 2, 3, 4, 150)
	fbuf := a.mem.Alloc(2048, 64)
	a.mem.WriteAt(fbuf, frame)
	for i := 0; i < 4; i++ {
		dsq.post(SendWQE{Opcode: OpSend, Addr: a.fab.AddrOf(a.mem, fbuf), Len: uint32(len(frame))})
	}
	dsq.doorbell()
	eng.Run()
	if len(*cqes) >= 4 {
		t.Fatalf("policer admitted everything (%d)", len(*cqes))
	}
	if b.nic.Stats.Drops["policer"] == 0 {
		t.Fatal("no policer drops recorded")
	}
}

func TestGotoTableChains(t *testing.T) {
	eng, a, b, _ := twoNodes(t)
	dsq, drq, cqes, bufBase := setupEthTxRx(t, a, b, 0)
	b.nic.ESwitch().ClearTable(0)
	next := 50
	b.nic.ESwitch().AddRule(0, Rule{Action: Action{SetFlowTag: u32(5), ToTable: &next}})
	b.nic.ESwitch().AddRule(50, Rule{Match: Match{FlowTag: u32(5)}, Action: Action{ToRQ: drq.rq}})
	drq.post(b.fab.AddrOf(b.mem, bufBase), 2048, 0)
	frame := buildFrame(1, 2, 3, 4, 80)
	fbuf := a.mem.Alloc(2048, 64)
	a.mem.WriteAt(fbuf, frame)
	dsq.post(SendWQE{Opcode: OpSend, Addr: a.fab.AddrOf(a.mem, fbuf), Len: uint32(len(frame))})
	dsq.doorbell()
	eng.Run()
	if len(*cqes) != 1 || (*cqes)[0].FlowTag != 5 {
		t.Fatalf("goto-table pipeline failed: %v", *cqes)
	}
}

func TestTableLoopProtection(t *testing.T) {
	eng, a, b, _ := twoNodes(t)
	dsq, _, _, _ := setupEthTxRx(t, a, b, 0)
	b.nic.ESwitch().ClearTable(0)
	zero := 0
	b.nic.ESwitch().AddRule(0, Rule{Action: Action{ToTable: &zero}})
	frame := buildFrame(1, 2, 3, 4, 80)
	fbuf := a.mem.Alloc(2048, 64)
	a.mem.WriteAt(fbuf, frame)
	dsq.post(SendWQE{Opcode: OpSend, Addr: a.fab.AddrOf(a.mem, fbuf), Len: uint32(len(frame))})
	dsq.doorbell()
	eng.Run()
	if b.nic.Stats.Drops["table-loop"] != 1 {
		t.Fatalf("loop not detected: %v", b.nic.Stats.Drops)
	}
}

func TestEgressShaperDelaysTraffic(t *testing.T) {
	eng, a, b, _ := twoNodes(t)
	dsq, drq, cqes, bufBase := setupEthTxRx(t, a, b, 0)
	// Shape sender vport egress to 1 Gbps.
	sh := sim.NewTokenBucket(eng, 1*sim.Gbps, 1500)
	vp := dsq.sq.VPort
	a.nic.ESwitch().ClearTable(vp.EgressTable)
	a.nic.ESwitch().AddRule(vp.EgressTable, Rule{Action: Action{Shaper: sh, ToWire: true}})
	for i := 0; i < 32; i++ {
		drq.post(b.fab.AddrOf(b.mem, bufBase+uint64(i)*2048), 2048, 0)
	}
	frame := buildFrame(1, 2, 3, 4, 1200)
	fbuf := a.mem.Alloc(2048, 64)
	a.mem.WriteAt(fbuf, frame)
	const n = 16
	for i := 0; i < n; i++ {
		dsq.post(SendWQE{Opcode: OpSend, Addr: a.fab.AddrOf(a.mem, fbuf), Len: uint32(len(frame))})
	}
	dsq.doorbell()
	eng.Run()
	if len(*cqes) != n {
		t.Fatalf("delivered %d, want %d (shaper must delay, not drop)", len(*cqes), n)
	}
	// 16 x ~1250B at 1 Gbps ~= 160 us minimum.
	if eng.Now() < 100*sim.Microsecond {
		t.Fatalf("finished too fast for 1 Gbps shaping: %v", eng.Now())
	}
}

// TestEncapAction: the eSwitch prepends a prebuilt outer header (the
// reverse of the decap offload) and the result parses as the tunnel.
func TestEncapAction(t *testing.T) {
	eng, a, b, _ := twoNodes(t)
	dsq, drq, cqes, bufBase := setupEthTxRx(t, a, b, 0)

	inner := buildFrame(5, 6, 100, 200, 120)
	// Outer headers for a VXLAN tunnel around `inner`.
	vx := netpkt.VXLAN{VNI: 7}
	vxb := vx.Marshal(nil)
	udp := netpkt.UDP{SrcPort: 1, DstPort: netpkt.VXLANPort,
		Length: uint16(netpkt.UDPHeaderLen + len(vxb) + len(inner))}
	udpb := udp.Marshal(nil)
	ip := netpkt.IPv4{TotalLen: uint16(netpkt.IPv4HeaderLen + len(udpb) + len(vxb) + len(inner)),
		Proto: netpkt.ProtoUDP, Src: netpkt.IPFrom(11), Dst: netpkt.IPFrom(12)}
	ipb := ip.Marshal(nil)
	eth := netpkt.Eth{Dst: netpkt.MACFrom(12), Src: netpkt.MACFrom(11), EtherType: netpkt.EtherTypeIPv4}
	outer := append(append(append(eth.Marshal(nil), ipb...), udpb...), vxb...)

	// Sender-side egress: encapsulate everything leaving the vport.
	vp := dsq.sq.VPort
	a.nic.ESwitch().ClearTable(vp.EgressTable)
	a.nic.ESwitch().AddRule(vp.EgressTable, Rule{Action: Action{Encap: outer, ToWire: true}})
	drq.post(b.fab.AddrOf(b.mem, bufBase), 2048, 0)

	fbuf := a.mem.Alloc(2048, 64)
	a.mem.WriteAt(fbuf, inner)
	dsq.post(SendWQE{Opcode: OpSend, Addr: a.fab.AddrOf(a.mem, fbuf), Len: uint32(len(inner))})
	dsq.doorbell()
	eng.Run()

	if len(*cqes) != 1 {
		t.Fatalf("CQEs = %d (drops %v)", len(*cqes), b.nic.Stats.Drops)
	}
	got := b.mem.ReadAt(bufBase, int((*cqes)[0].ByteCount))
	v := parseView(got, 0)
	if !v.vxlan || v.vni != 7 {
		t.Fatalf("received frame is not the VXLAN encapsulation")
	}
}

// TestWireLossCounters: the wire's counters reflect injected loss.
func TestWireLossCounters(t *testing.T) {
	eng, a, b, w := twoNodes(t)
	dsq, drq, cqes, bufBase := setupEthTxRx(t, a, b, 0)
	for i := 0; i < 8; i++ {
		drq.post(b.fab.AddrOf(b.mem, bufBase+uint64(i)*2048), 2048, 0)
	}
	n := 0
	w.Loss = func(int, []byte) bool { n++; return n%2 == 0 } // drop every 2nd
	frame := buildFrame(1, 2, 3, 4, 100)
	fbuf := a.mem.Alloc(2048, 64)
	a.mem.WriteAt(fbuf, frame)
	for i := 0; i < 8; i++ {
		dsq.post(SendWQE{Opcode: OpSend, Addr: a.fab.AddrOf(a.mem, fbuf), Len: uint32(len(frame))})
	}
	dsq.doorbell()
	eng.Run()
	if w.Sent[0] != 8 || w.Delivered[0] != 4 {
		t.Fatalf("wire counters sent=%d delivered=%d", w.Sent[0], w.Delivered[0])
	}
	if len(*cqes) != 4 {
		t.Fatalf("delivered frames = %d, want 4", len(*cqes))
	}
	if w.Rate() != 25*sim.Gbps {
		t.Fatalf("wire rate = %v", w.Rate())
	}
}
