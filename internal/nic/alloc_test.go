package nic

import "testing"

// TestWireTransitZeroAlloc pins the wire forwarding machinery at zero
// allocations per frame: getXfer/putXfer recycle the transit record and
// the serialization resource reschedules it through arg-form callbacks,
// so steady-state sends never allocate. The test drops every frame at the
// far edge of the cable (injected loss) so the measurement ends where the
// wire's ownership does — delivery hands the frame to the receiving NIC's
// match-action pipeline, which is outside the wire's zero-alloc contract.
func TestWireTransitZeroAlloc(t *testing.T) {
	eng, w, frame := wireBed(t)
	w.Loss = func(int, []byte) bool { return true }

	// Warm: first drop creates the telemetry counter for the reason, the
	// first transit record seeds the freelist.
	w.send(0, frame, nil)
	eng.Run()

	avg := testing.AllocsPerRun(100, func() {
		w.send(0, frame, nil)
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("wire transit: %.1f allocs per frame, want 0", avg)
	}
	if w.Sent[0] == 0 || w.Lost[0] != w.Sent[0] {
		t.Fatalf("Sent=%d Lost=%d, loss hook should have dropped every frame",
			w.Sent[0], w.Lost[0])
	}
}
