package nic

import (
	"bytes"
	"math/rand"
	"testing"

	"flexdriver/internal/sim"
)

// rdmaPair builds two connected RC QPs across a wire, with the receiver's
// SRQ backed by MPRQ buffers in host memory. Returns helpers plus the
// received-message collector (reassembled from per-packet CQEs).
type rdmaHarness struct {
	eng      *sim.Engine
	a, b     *node
	wire     *Wire
	qpA, qpB *QP
	sqA      *driverSQ
	// msgs accumulates fully received messages on B, in order.
	msgs *[][]byte
	// sendCQEs counts send completions on A.
	sendCQEs *int
}

func newRDMAHarness(t *testing.T, mtu int) *rdmaHarness {
	t.Helper()
	eng := sim.NewEngine()
	a := newNode(t, eng)
	b := newNode(t, eng)
	w := ConnectWire(a.nic, b.nic, 25*sim.Gbps, 500*sim.Nanosecond)

	// --- sender side ---
	sendCQEs := 0
	scqRing := a.mem.Alloc(256*CQESize, 64)
	scq := a.nic.CreateCQ(CQConfig{Ring: a.fab.AddrOf(a.mem, scqRing), Size: 256,
		OnCQE: func(CQE) { sendCQEs++ }})
	sqRing := a.mem.Alloc(256*SendWQESize, 64)
	sqA := a.nic.CreateSQ(SQConfig{Ring: a.fab.AddrOf(a.mem, sqRing), Size: 256, CQ: scq})
	qpA := a.nic.CreateQP(QPConfig{SQ: sqA, MTU: mtu})

	// --- receiver side ---
	var msgs [][]byte
	var cur []byte
	bufBase := b.mem.Alloc(1<<22, 4096)
	rcqRing := b.mem.Alloc(1024*CQESize, 64)
	rcq := b.nic.CreateCQ(CQConfig{Ring: b.fab.AddrOf(b.mem, rcqRing), Size: 1024,
		OnCQE: func(c CQE) {
			// Reassemble from the packet-level completions, reading the
			// payload back out of the buffer the NIC placed it in.
			base := b.fab.PortOf(b.mem).Base()
			data := b.mem.ReadAt(c.Addr-base, int(c.ByteCount))
			cur = append(cur, data...)
			if c.Last {
				msgs = append(msgs, cur)
				cur = nil
			}
		}})
	rqRing := b.mem.Alloc(256*RecvWQESize, 64)
	srq := b.nic.CreateRQ(RQConfig{Ring: b.fab.AddrOf(b.mem, rqRing), Size: 256, CQ: rcq, StrideSize: 256})
	drq := &driverRQ{nd: b, rq: srq, ring: rqRing}
	for i := 0; i < 128; i++ {
		drq.post(b.fab.AddrOf(b.mem, bufBase+uint64(i)*32768), 32768, 8)
	}
	qpB := b.nic.CreateQP(QPConfig{RQ: srq, MTU: mtu})
	ConnectQPs(qpA, qpB)

	return &rdmaHarness{eng: eng, a: a, b: b, wire: w, qpA: qpA, qpB: qpB,
		sqA: &driverSQ{nd: a, sq: sqA, ring: sqRing}, msgs: &msgs, sendCQEs: &sendCQEs}
}

func (h *rdmaHarness) sendMessage(data []byte, signal bool) {
	buf := h.a.mem.Alloc(uint64(len(data)+64), 64)
	h.a.mem.WriteAt(buf, data)
	h.sqA.post(SendWQE{Opcode: OpSend, Signal: signal,
		Addr: h.a.fab.AddrOf(h.a.mem, buf), Len: uint32(len(data))})
	h.sqA.doorbell()
}

func TestRDMASingleMessage(t *testing.T) {
	h := newRDMAHarness(t, 1024)
	msg := make([]byte, 700)
	for i := range msg {
		msg[i] = byte(i * 3)
	}
	h.sendMessage(msg, true)
	h.eng.Run()
	if len(*h.msgs) != 1 || !bytes.Equal((*h.msgs)[0], msg) {
		t.Fatalf("message not delivered intact (%d msgs)", len(*h.msgs))
	}
	if *h.sendCQEs != 1 {
		t.Fatalf("send completions = %d", *h.sendCQEs)
	}
	if h.qpA.Outstanding() != 0 {
		t.Fatalf("unacked packets: %d", h.qpA.Outstanding())
	}
}

func TestRDMASegmentationBeyondMTU(t *testing.T) {
	h := newRDMAHarness(t, 1024)
	// 5000 B message -> 5 packets; the NIC segments in hardware
	// (paper: "FLD-R uses messages larger than the MTU").
	msg := make([]byte, 5000)
	for i := range msg {
		msg[i] = byte(i)
	}
	h.sendMessage(msg, true)
	h.eng.Run()
	if len(*h.msgs) != 1 || !bytes.Equal((*h.msgs)[0], msg) {
		t.Fatal("segmented message corrupted")
	}
	// 5 data packets on the wire.
	if h.a.nic.Stats.TxPackets != 5 {
		t.Fatalf("tx packets = %d, want 5", h.a.nic.Stats.TxPackets)
	}
}

func TestRDMAManyMessagesInOrder(t *testing.T) {
	h := newRDMAHarness(t, 1024)
	const n = 50
	var want [][]byte
	for i := 0; i < n; i++ {
		msg := make([]byte, 100+i*37)
		for j := range msg {
			msg[j] = byte(i ^ j)
		}
		want = append(want, msg)
		h.sendMessage(msg, i == n-1)
	}
	h.eng.Run()
	if len(*h.msgs) != n {
		t.Fatalf("delivered %d messages, want %d", len(*h.msgs), n)
	}
	for i := range want {
		if !bytes.Equal((*h.msgs)[i], want[i]) {
			t.Fatalf("message %d corrupted or out of order", i)
		}
	}
}

func TestRDMARecoversFromLoss(t *testing.T) {
	h := newRDMAHarness(t, 1024)
	// Drop the 3rd data packet once.
	dropped := false
	count := 0
	h.wire.Loss = func(dir int, frame []byte) bool {
		if dir != 0 {
			return false
		}
		count++
		if count == 3 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	msg := make([]byte, 4096)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	h.sendMessage(msg, true)
	h.eng.Run()
	if !dropped {
		t.Fatal("loss injection never fired")
	}
	if len(*h.msgs) != 1 || !bytes.Equal((*h.msgs)[0], msg) {
		t.Fatal("message not recovered after loss")
	}
	if *h.sendCQEs != 1 {
		t.Fatalf("send completions = %d", *h.sendCQEs)
	}
}

func TestRDMARecoversFromAckLoss(t *testing.T) {
	h := newRDMAHarness(t, 1024)
	// Drop the first ACK (wire direction B->A), forcing timeout retransmit
	// and duplicate suppression at the receiver.
	droppedAcks := 0
	h.wire.Loss = func(dir int, frame []byte) bool {
		if dir != 1 {
			return false
		}
		if bth, _, ok := parseRoCE(frame); ok && bth.Opcode == btAck && droppedAcks == 0 {
			droppedAcks++
			return true
		}
		return false
	}
	msg := []byte("ack loss recovery message")
	h.sendMessage(msg, true)
	h.eng.Run()
	if droppedAcks != 1 {
		t.Fatal("ACK loss never injected")
	}
	if len(*h.msgs) != 1 || !bytes.Equal((*h.msgs)[0], msg) {
		t.Fatalf("message state after ack loss: %d msgs", len(*h.msgs))
	}
	if *h.sendCQEs != 1 {
		t.Fatalf("send completions = %d, want exactly 1", *h.sendCQEs)
	}
}

// TestRDMAExactlyOnceUnderRandomLoss is the transport's property test:
// under random loss of data and control packets, every message is
// delivered exactly once, in order, uncorrupted.
func TestRDMAExactlyOnceUnderRandomLoss(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 11} {
		h := newRDMAHarness(t, 512)
		r := rand.New(rand.NewSource(seed))
		h.wire.Loss = func(int, []byte) bool { return r.Intn(100) < 7 }
		const n = 30
		var want [][]byte
		for i := 0; i < n; i++ {
			msg := make([]byte, 50+r.Intn(3000))
			r.Read(msg)
			want = append(want, msg)
			h.sendMessage(msg, true)
		}
		h.eng.Run()
		if len(*h.msgs) != n {
			t.Fatalf("seed %d: delivered %d messages, want %d", seed, len(*h.msgs), n)
		}
		for i := range want {
			if !bytes.Equal((*h.msgs)[i], want[i]) {
				t.Fatalf("seed %d: message %d corrupted/reordered", seed, i)
			}
		}
		if *h.sendCQEs != n {
			t.Fatalf("seed %d: send completions = %d, want %d", seed, *h.sendCQEs, n)
		}
	}
}

func TestRDMALocalLoopbackQPs(t *testing.T) {
	// Both QPs on one NIC: the paper's local FLD-R topology.
	eng := sim.NewEngine()
	a := newNode(t, eng)

	sendCQEs := 0
	scqRing := a.mem.Alloc(64*CQESize, 64)
	scq := a.nic.CreateCQ(CQConfig{Ring: a.fab.AddrOf(a.mem, scqRing), Size: 64,
		OnCQE: func(CQE) { sendCQEs++ }})
	sqRing := a.mem.Alloc(64*SendWQESize, 64)
	sq := a.nic.CreateSQ(SQConfig{Ring: a.fab.AddrOf(a.mem, sqRing), Size: 64, CQ: scq})
	qp1 := a.nic.CreateQP(QPConfig{SQ: sq})

	var got []byte
	bufBase := a.mem.Alloc(1<<20, 4096)
	rcqRing := a.mem.Alloc(256*CQESize, 64)
	rcq := a.nic.CreateCQ(CQConfig{Ring: a.fab.AddrOf(a.mem, rcqRing), Size: 256,
		OnCQE: func(c CQE) {
			base := a.fab.PortOf(a.mem).Base()
			got = append(got, a.mem.ReadAt(c.Addr-base, int(c.ByteCount))...)
		}})
	rqRing := a.mem.Alloc(64*RecvWQESize, 64)
	srq := a.nic.CreateRQ(RQConfig{Ring: a.fab.AddrOf(a.mem, rqRing), Size: 64, CQ: rcq, StrideSize: 256})
	drq := &driverRQ{nd: a, rq: srq, ring: rqRing}
	for i := 0; i < 16; i++ {
		drq.post(a.fab.AddrOf(a.mem, bufBase+uint64(i)*32768), 32768, 8)
	}
	qp2 := a.nic.CreateQP(QPConfig{RQ: srq})
	ConnectQPs(qp1, qp2)

	msg := make([]byte, 2500)
	for i := range msg {
		msg[i] = byte(255 - i%251)
	}
	buf := a.mem.Alloc(4096, 64)
	a.mem.WriteAt(buf, msg)
	dsq := &driverSQ{nd: a, sq: sq, ring: sqRing}
	dsq.post(SendWQE{Opcode: OpSend, Signal: true, Addr: a.fab.AddrOf(a.mem, buf), Len: uint32(len(msg))})
	dsq.doorbell()
	eng.Run()

	if !bytes.Equal(got, msg) {
		t.Fatalf("loopback message corrupted (%d/%d bytes)", len(got), len(msg))
	}
	if sendCQEs != 1 {
		t.Fatalf("send completions = %d", sendCQEs)
	}
}

func TestRoCEParseRejectsNonRoCE(t *testing.T) {
	frame := buildFrame(1, 2, 100, 200, 64)
	if _, _, ok := parseRoCE(frame); ok {
		t.Fatal("plain UDP parsed as RoCE")
	}
}
