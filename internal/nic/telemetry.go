package nic

import (
	"fmt"

	"flexdriver/internal/telemetry"
)

// nicTelemetry holds the NIC-level counters. Per-queue handles live on
// the queues themselves (nil-safe: a NIC without telemetry pays one
// branch per event inside each handle method).
type nicTelemetry struct {
	scope *telemetry.Scope

	txPackets, txBytes *telemetry.Counter
	rxPackets, rxBytes *telemetry.Counter
	drops              map[DropReason]*telemetry.Counter

	errQueue     *telemetry.Counter // queue transitions into Error
	errRecovered *telemetry.Counter // driver-initiated resets to Ready

	devCrashes *telemetry.Counter // device-level crash windows
	devFLRs    *telemetry.Counter // function-level resets
}

// SetTelemetry attaches a telemetry scope to the NIC: NIC-level
// tx/rx/drop counters, engine-utilization funcs, per-queue
// doorbell/WQE/CQE counters (for queues that already exist and queues
// created later), and eSwitch per-table rule-hit counters.
func (n *NIC) SetTelemetry(sc *telemetry.Scope) {
	if sc == nil {
		return
	}
	n.tlm = &nicTelemetry{
		scope:     sc,
		txPackets: sc.Counter("tx/packets"),
		txBytes:   sc.Counter("tx/bytes"),
		rxPackets: sc.Counter("rx/packets"),
		rxBytes:   sc.Counter("rx/bytes"),
		drops:     make(map[DropReason]*telemetry.Counter),

		errQueue:     sc.Counter("errors/queue"),
		errRecovered: sc.Counter("errors/recovered"),

		devCrashes: sc.Counter("device/crashes"),
		devFLRs:    sc.Counter("device/flrs"),
	}
	sc.Func("tx_engine/util", n.txEngine.Utilization)
	sc.Func("rx_engine/util", n.rxEngine.Utilization)
	for _, vf := range n.VFs() {
		if vf.scope == nil {
			vf.instrument(sc)
		}
	}
	for _, sq := range n.sqs {
		sq.instrument(n.queueScope(sq.vf))
	}
	for _, rq := range n.rqs {
		rq.instrument(n.queueScope(rq.vf))
	}
	for _, cq := range n.cqs {
		cq.instrument(n.queueScope(cq.vf))
	}
	n.esw.setTelemetry(sc.Scope("eswitch"))
}

// drop records a packet/doorbell drop in Stats and, when telemetry is
// attached, in a per-reason counter. Drops are off the hot path, so the
// lazy per-reason counter creation is acceptable.
func (n *NIC) drop(reason DropReason) {
	n.Stats.drop(reason)
	if t := n.tlm; t != nil {
		c := t.drops[reason]
		if c == nil {
			c = t.scope.Counter("drops/" + string(reason))
			t.drops[reason] = c
		}
		c.Inc()
	}
}

func (sq *SQ) instrument(sc *telemetry.Scope) {
	s := sc.Scope(fmt.Sprintf("sq%d", sq.ID))
	sq.tDoorbells = s.Counter("doorbells")
	sq.tWQEMMIO = s.Counter("wqe_mmio")
	sq.tFetchReads = s.Counter("wqe_fetch_reads")
	sq.tFetchedWQEs = s.Counter("wqe_fetched")
	sq.tExecuted = s.Counter("wqe_executed")
	sq.tShaped = s.Counter("shaper_delays")
	sq.tFetchBatch = s.Histogram("fetch_batch")
}

func (rq *RQ) instrument(sc *telemetry.Scope) {
	s := sc.Scope(fmt.Sprintf("rq%d", rq.ID))
	rq.tDoorbells = s.Counter("doorbells")
	rq.tFetchReads = s.Counter("desc_fetch_reads")
	rq.tFetchedDescs = s.Counter("desc_fetched")
	rq.tPlaced = s.Counter("packets")
	rq.tPlacedBytes = s.Counter("bytes")
}

func (cq *CQ) instrument(sc *telemetry.Scope) {
	cq.tCQEs = sc.Scope(fmt.Sprintf("cq%d", cq.ID)).Counter("cqes")
}

// eswTelemetry counts rule activity: hits per table plus the named
// Count actions mirrored into the registry.
type eswTelemetry struct {
	scope  *telemetry.Scope
	hits   map[int]*telemetry.Counter
	counts map[string]*telemetry.Counter
}

func (e *ESwitch) setTelemetry(sc *telemetry.Scope) {
	t := &eswTelemetry{
		scope:  sc,
		hits:   make(map[int]*telemetry.Counter),
		counts: make(map[string]*telemetry.Counter),
	}
	e.tlm = t
	sc.Func("loopback_util", e.loopback.Utilization)
	for table, rules := range e.tables {
		t.table(table)
		for i := range rules {
			if name := rules[i].Action.Count; name != "" {
				t.count(name)
			}
		}
	}
}

// table returns (creating on first use) the hit counter for a table.
func (t *eswTelemetry) table(table int) *telemetry.Counter {
	c := t.hits[table]
	if c == nil {
		c = t.scope.Counter(fmt.Sprintf("table%d/hits", table))
		t.hits[table] = c
	}
	return c
}

// count returns (creating on first use) the counter backing a Count
// action name.
func (t *eswTelemetry) count(name string) *telemetry.Counter {
	c := t.counts[name]
	if c == nil {
		c = t.scope.Counter("count/" + name)
		t.counts[name] = c
	}
	return c
}
