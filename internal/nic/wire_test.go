package nic

import (
	"testing"

	"flexdriver/internal/sim"
)

// wireBed cables two idle NICs and returns the wire plus a 600 B test
// frame; tests drive w.send directly and pin delivery instants through
// the Delivered counter, which increments exactly when a copy reaches
// the far NIC.
func wireBed(t *testing.T) (*sim.Engine, *Wire, []byte) {
	t.Helper()
	eng, _, _, w := twoNodes(t)
	return eng, w, buildFrame(1, 2, 1000, 2000, 600)
}

// deliveredAt asserts the cumulative dir-0 delivery count just before
// and at the expected instant.
func deliveredAt(t *testing.T, eng *sim.Engine, w *Wire, at sim.Time, want int64) {
	t.Helper()
	eng.RunUntil(at - 1)
	if w.Delivered[0] == want {
		t.Errorf("delivery #%d already happened before %v", want, at)
	}
	eng.RunUntil(at)
	if w.Delivered[0] != want {
		t.Errorf("at %v: Delivered = %d, want %d", at, w.Delivered[0], want)
	}
}

// TestWireDupStagger pins the duplicate-delivery timing contract: the
// original arrives after one serialization time plus the propagation
// latency, and the second copy trails it by exactly one more
// serialization time, as a back-to-back link-level retransmission would.
func TestWireDupStagger(t *testing.T) {
	eng, w, frame := wireBed(t)
	w.Dup = func(int, []byte) bool { return true }

	w.send(0, frame, nil)
	ser := w.Rate().Serialize(len(frame) + EthWireOverhead)
	first := ser + 500*sim.Nanosecond
	deliveredAt(t, eng, w, first, 1)
	deliveredAt(t, eng, w, first+ser, 2)
	eng.Run()
	if w.Sent[0] != 1 || w.Delivered[0] != 2 {
		t.Errorf("counters Sent=%d Delivered=%d, want 1 sent / 2 delivered", w.Sent[0], w.Delivered[0])
	}
}

// TestWireDelayShiftsDelivery pins the Delay hook contract: the extra
// latency adds to the propagation delay without touching serialization,
// so delivery shifts by exactly the injected amount.
func TestWireDelayShiftsDelivery(t *testing.T) {
	eng, w, frame := wireBed(t)
	const extra = 700 * sim.Nanosecond
	w.Delay = func(int, []byte) sim.Duration { return extra }

	w.send(0, frame, nil)
	ser := w.Rate().Serialize(len(frame) + EthWireOverhead)
	deliveredAt(t, eng, w, ser+500*sim.Nanosecond+extra, 1)
	eng.Run()
	if w.Delivered[0] != 1 {
		t.Errorf("Delivered = %d, want 1", w.Delivered[0])
	}
}

// TestWireDupAndDelayCompose pins the interaction: an injected delay
// shifts both copies of a duplicated frame while the one-serialization
// stagger between them is preserved.
func TestWireDupAndDelayCompose(t *testing.T) {
	eng, w, frame := wireBed(t)
	const extra = 700 * sim.Nanosecond
	w.Dup = func(int, []byte) bool { return true }
	w.Delay = func(int, []byte) sim.Duration { return extra }

	w.send(0, frame, nil)
	ser := w.Rate().Serialize(len(frame) + EthWireOverhead)
	first := ser + 500*sim.Nanosecond + extra
	deliveredAt(t, eng, w, first, 1)
	deliveredAt(t, eng, w, first+ser, 2)
}

// TestWireDupEndToEnd drives a duplicated frame through the full NIC
// receive path: both copies must land as distinct host CQEs.
func TestWireDupEndToEnd(t *testing.T) {
	eng, a, b, w := twoNodes(t)
	w.Dup = func(int, []byte) bool { return true }
	dsq, drq, cqes, bufBase := setupEthTxRx(t, a, b, 0)
	drq.post(b.fab.AddrOf(b.mem, bufBase), 2048, 0)
	drq.post(b.fab.AddrOf(b.mem, bufBase+2048), 2048, 0)

	f := buildFrame(1, 2, 1000, 2000, 600)
	fbuf := a.mem.Alloc(2048, 64)
	a.mem.WriteAt(fbuf, f)
	dsq.post(SendWQE{Opcode: OpSend, Signal: true, Addr: a.fab.AddrOf(a.mem, fbuf), Len: uint32(len(f))})
	dsq.doorbell()
	eng.Run()

	if len(*cqes) != 2 {
		t.Fatalf("duplicated frame produced %d rx CQEs, want 2", len(*cqes))
	}
	if a.nic.Stats.TxPackets != 1 || b.nic.Stats.RxPackets != 2 {
		t.Errorf("counters: tx=%d rx=%d, want 1 tx / 2 rx", a.nic.Stats.TxPackets, b.nic.Stats.RxPackets)
	}
}

// capturePort records frames a NIC hands to its physical attachment.
type capturePort struct {
	frames [][]byte
}

func (c *capturePort) Send(frame []byte, onSent func()) {
	c.frames = append(c.frames, frame)
	if onSent != nil {
		onSent()
	}
}

// TestAttachPortReplacesWire verifies the Port seam ConnectWire and the
// switch both plug into: whatever was attached last receives egress.
func TestAttachPortReplacesWire(t *testing.T) {
	eng, a, b, _ := twoNodes(t)
	cp := &capturePort{}
	a.nic.AttachPort(cp)

	dsq, _, _, _ := setupEthTxRx(t, a, b, 0)
	f := buildFrame(1, 2, 1000, 2000, 64)
	fbuf := a.mem.Alloc(2048, 64)
	a.mem.WriteAt(fbuf, f)
	dsq.post(SendWQE{Opcode: OpSend, Signal: true, Addr: a.fab.AddrOf(a.mem, fbuf), Len: uint32(len(f))})
	dsq.doorbell()
	eng.Run()

	if len(cp.frames) != 1 || len(cp.frames[0]) != len(f) {
		t.Fatalf("capture port saw %d frames, want the 1 egress frame", len(cp.frames))
	}
}
