package nic

import (
	"fmt"

	"flexdriver/internal/netpkt"
	"flexdriver/internal/pcie"
	"flexdriver/internal/sim"
	"flexdriver/internal/telemetry"
)

// Params collects the NIC's timing and transport constants. Defaults are
// calibrated to ConnectX-5-class behaviour on the Innova-2 testbed.
type Params struct {
	// TxPerWQE is the send-engine service time per descriptor; its
	// inverse is the NIC's transmit packet-rate ceiling.
	TxPerWQE sim.Duration
	// RxPerPkt is the receive-engine service time per packet.
	RxPerPkt sim.Duration
	// PipelineDelay is the fixed latency a packet spends crossing the
	// NIC's internal pipeline in each direction.
	PipelineDelay sim.Duration
	// RoCEMTU is the RDMA path MTU (1024 B in the paper's experiments).
	RoCEMTU int
	// RetransmitTimeout triggers go-back-N recovery for RC QPs.
	RetransmitTimeout sim.Duration
	// MaxRetransmits bounds consecutive no-progress retransmissions
	// before the QP transitions to the Error state (IB retry_cnt
	// analogue). Zero selects the default.
	MaxRetransmits int
	// AckCoalesce acknowledges once per this many completed messages;
	// AckDelay bounds how long an ACK may be withheld.
	AckCoalesce int
	AckDelay    sim.Duration
	// SQWindow bounds per-SQ outstanding descriptor fetches, modeling
	// the NIC's pipelining of PCIe reads.
	SQWindow int
}

// DefaultParams returns the calibrated constants.
func DefaultParams() Params {
	return Params{
		TxPerWQE:          10 * sim.Nanosecond, // ~100 Mpps engine
		RxPerPkt:          10 * sim.Nanosecond,
		PipelineDelay:     150 * sim.Nanosecond,
		RoCEMTU:           1024,
		RetransmitTimeout: 100 * sim.Microsecond,
		MaxRetransmits:    8,
		AckCoalesce:       4,
		AckDelay:          2 * sim.Microsecond,
		SQWindow:          32,
	}
}

// BAR layout: per-SQ doorbell/WQE pages then per-RQ doorbells.
const (
	barSize        = 1 << 20
	sqDoorbellBase = 0x00000
	sqDoorbellStep = 256
	rqDoorbellBase = 0x80000
	rqDoorbellStep = 8
)

// Counters aggregates NIC-level statistics.
type Counters struct {
	TxPackets, TxBytes int64
	RxPackets, RxBytes int64
	Drops              map[DropReason]int64

	// QueueErrors counts SQ/RQ/QP transitions into the Error state;
	// QueueRecoveries counts driver-initiated resets back to Ready.
	QueueErrors     int64
	QueueRecoveries int64

	// DeviceCrashes counts device-level crash windows (Crash calls that
	// actually took the device down); DeviceFLRs counts driver-initiated
	// function-level resets.
	DeviceCrashes int64
	DeviceFLRs    int64
}

func (c *Counters) drop(reason DropReason) {
	if c.Drops == nil {
		c.Drops = make(map[DropReason]int64)
	}
	c.Drops[reason]++
}

// NIC is one simulated adapter. Create with New, attach to a PCIe fabric
// with AttachPCIe, and connect to a peer with ConnectWire (or use the
// eSwitch loopback rules for single-node experiments).
type NIC struct {
	Name string
	Prm  Params

	// MAC and IP identify the NIC's physical port for RoCE framing.
	MAC netpkt.MAC
	IP  netpkt.IP

	eng    *sim.Engine
	fabric *pcie.Fabric
	port   *pcie.Port

	phy Port // physical attachment: cable end or switch port

	esw *ESwitch

	sqs map[uint32]*SQ
	rqs map[uint32]*RQ
	cqs map[uint32]*CQ
	qps map[uint32]*QP

	// vfs holds the virtual functions the PF has created (see vf.go);
	// nil until the first CreateVF. Their queues live in the flat maps
	// above — device-level Crash/FLR cover every function at once.
	vfs    map[int]*VF
	nextVF int

	txEngine *sim.Resource
	rxEngine *sim.Resource
	ets      *etsScheduler // lazily created when a weighted SQ sends

	// Freelists of pooled steady-state records (see pool.go).
	freeExec *sqExec
	freeTx   *txSend
	freeCQW  *cqWrite
	freeRx   *rxDone

	nextQN uint32

	// downN counts active crash windows (see Crash/Restart in
	// failure.go); the device is operational only at zero.
	downN int

	Stats Counters

	tlm *nicTelemetry // nil unless SetTelemetry was called
	flt *FaultHooks   // nil unless SetFaults was called
}

// New returns a NIC bound to the engine, with a MAC/IP identity unique
// within the engine. Identity comes from the engine's own allocator, not
// a package global: a fresh engine always numbers its NICs 1, 2, 3, ...,
// so two runs of the same scenario build bit-identical clusters (RSS
// hashes included) — the scenario fuzzer's replay-determinism invariant
// depends on it.
func New(name string, eng *sim.Engine, prm Params) *NIC {
	id := eng.NextID("nic")
	n := &NIC{
		Name: name,
		Prm:  prm,
		MAC:  netpkt.MACFrom(id),
		IP:   netpkt.IPFrom(id),
		eng:  eng,
		sqs:  make(map[uint32]*SQ),
		rqs:  make(map[uint32]*RQ),
		cqs:  make(map[uint32]*CQ),
		qps:  make(map[uint32]*QP),
	}
	n.esw = newESwitch(n)
	n.txEngine = sim.NewResource(eng)
	n.rxEngine = sim.NewResource(eng)
	return n
}

// AttachPCIe connects the NIC to a fabric; the NIC uses the returned port
// as its DMA initiator for all ring and buffer accesses.
func (n *NIC) AttachPCIe(fab *pcie.Fabric, cfg pcie.LinkConfig) *pcie.Port {
	n.fabric = fab
	n.port = fab.Attach(n, cfg)
	return n.port
}

// Engine returns the simulation engine.
func (n *NIC) Engine() *sim.Engine { return n.eng }

// ESwitch returns the NIC's embedded switch for rule programming.
func (n *NIC) ESwitch() *ESwitch { return n.esw }

// PCIeName implements pcie.Device.
func (n *NIC) PCIeName() string { return n.Name }

// BARSize implements pcie.Device.
func (n *NIC) BARSize() uint64 { return barSize }

// MMIORead implements pcie.Device. The NIC BAR is write-only in this model
// (doorbells); reads return zeros like reserved registers. A crashed
// device does not respond at all: nil elicits no completion, so the
// requester sees a completion timeout.
func (n *NIC) MMIORead(offset uint64, size int) []byte {
	if n.downN > 0 {
		return nil
	}
	return make([]byte, size)
}

// MMIOWrite implements pcie.Device: doorbell decoding. Writes to a
// crashed device are posted into the void and counted.
func (n *NIC) MMIOWrite(offset uint64, data []byte) {
	if n.downN > 0 {
		n.drop(DropDeviceDown)
		return
	}
	switch {
	case offset >= sqDoorbellBase && offset < rqDoorbellBase:
		id := uint32((offset - sqDoorbellBase) / sqDoorbellStep)
		sq := n.sqs[id]
		if sq == nil {
			n.drop(DropDoorbellUnknownSQ)
			return
		}
		switch len(data) {
		case 4:
			if f := n.flt; f != nil && f.DropDoorbell != nil && f.DropDoorbell(n) {
				n.drop(DropDoorbellInjected)
				return
			}
			sq.ringDoorbell(beUint32(data))
		case SendWQESize, SendWQEMMIOSize:
			sq.pushWQE(data)
		default:
			n.drop(DropDoorbellBadSize)
		}
	case offset >= rqDoorbellBase:
		id := uint32((offset - rqDoorbellBase) / rqDoorbellStep)
		rq := n.rqs[id]
		if rq == nil {
			n.drop(DropDoorbellUnknownRQ)
			return
		}
		if len(data) == 4 {
			if f := n.flt; f != nil && f.DropDoorbell != nil && f.DropDoorbell(n) {
				n.drop(DropDoorbellInjected)
				return
			}
			rq.ringDoorbell(beUint32(data))
		}
	}
}

func beUint32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// SQDoorbellOffset returns the BAR offset of a send queue's doorbell.
func SQDoorbellOffset(sqn uint32) uint64 {
	return sqDoorbellBase + uint64(sqn)*sqDoorbellStep
}

// RQDoorbellOffset returns the BAR offset of a receive queue's doorbell.
func RQDoorbellOffset(rqn uint32) uint64 {
	return rqDoorbellBase + uint64(rqn)*rqDoorbellStep
}

func (n *NIC) allocQN() uint32 {
	n.nextQN++
	return n.nextQN
}

// --- Queue creation (control plane; invoked by driver software) ---------

// CQConfig configures a completion queue.
type CQConfig struct {
	Ring uint64 // PCIe address of the CQE ring
	Size int    // entries
	// OnCQE is invoked (in virtual time) after a CQE lands in the ring,
	// standing in for MSI-X/polling observation by the consumer.
	OnCQE func(CQE)
}

// CreateCQ allocates a completion queue on the physical function. VF
// queues are created through VF.CreateCQ, which enforces the quota.
func (n *NIC) CreateCQ(cfg CQConfig) *CQ {
	return n.createCQ(cfg, nil)
}

func (n *NIC) createCQ(cfg CQConfig, vf *VF) *CQ {
	cq := &CQ{n: n, ID: n.allocQN(), Ring: cfg.Ring, Size: cfg.Size, onCQE: cfg.OnCQE, vf: vf}
	n.cqs[cq.ID] = cq
	if n.tlm != nil {
		cq.instrument(n.queueScope(vf))
	}
	return cq
}

// queueScope picks the telemetry scope a queue instruments under: the
// owning VF's vf<ID>/ sub-scope, or the NIC scope for PF queues — so
// per-function counters are separable in the tree and PF paths are
// byte-identical to the pre-VF layout.
func (n *NIC) queueScope(vf *VF) *telemetry.Scope {
	if vf != nil && vf.scope != nil {
		return vf.scope
	}
	return n.tlm.scope
}

// SQConfig configures a send queue.
type SQConfig struct {
	Ring  uint64 // PCIe address of the 64 B-descriptor ring
	Size  int    // entries (power of two)
	CQ    *CQ
	VPort *VPort // egress port for raw Ethernet SQs
	// Shaper, when set, rate-limits this queue's egress.
	Shaper *sim.TokenBucket
	// Weight, when set (>0), enrolls the queue in ETS weighted
	// arbitration of the egress port.
	Weight int
}

// CreateSQ allocates a send queue on the physical function. VF queues
// are created through VF.CreateSQ, which enforces quota and domain.
func (n *NIC) CreateSQ(cfg SQConfig) *SQ {
	return n.createSQ(cfg, nil)
}

func (n *NIC) createSQ(cfg SQConfig, vf *VF) *SQ {
	if cfg.Size&(cfg.Size-1) != 0 {
		panic(fmt.Sprintf("nic: SQ size %d not a power of two", cfg.Size))
	}
	sq := &SQ{n: n, ID: n.allocQN(), Ring: cfg.Ring, Size: cfg.Size,
		CQ: cfg.CQ, VPort: cfg.VPort, Shaper: cfg.Shaper, Weight: cfg.Weight,
		vf: vf, mmio: make(map[uint32][]byte)}
	n.sqs[sq.ID] = sq
	if n.tlm != nil {
		sq.instrument(n.queueScope(vf))
	}
	return sq
}

// RQConfig configures a receive queue (or shared MPRQ).
type RQConfig struct {
	Ring uint64 // PCIe address of the 16 B-descriptor ring (host memory)
	Size int    // entries (power of two)
	CQ   *CQ
	// StrideSize enables multi-packet receive buffers: each posted
	// buffer is carved into strides and consumed packet by packet.
	// Zero means one packet per buffer.
	StrideSize int
}

// CreateRQ allocates a receive queue on the physical function. VF
// queues are created through VF.CreateRQ, which enforces the quota.
func (n *NIC) CreateRQ(cfg RQConfig) *RQ {
	return n.createRQ(cfg, nil)
}

func (n *NIC) createRQ(cfg RQConfig, vf *VF) *RQ {
	if cfg.Size&(cfg.Size-1) != 0 {
		panic(fmt.Sprintf("nic: RQ size %d not a power of two", cfg.Size))
	}
	rq := &RQ{n: n, ID: n.allocQN(), Ring: cfg.Ring, Size: cfg.Size,
		CQ: cfg.CQ, StrideSize: cfg.StrideSize, vf: vf}
	n.rqs[rq.ID] = rq
	if n.tlm != nil {
		rq.instrument(n.queueScope(vf))
	}
	return rq
}

// --- Send queue ----------------------------------------------------------

// SQ is a send queue: the NIC consumes 64 B descriptors from its ring (or
// pushed by MMIO) between the consumer index and the doorbell'd producer
// index.
type SQ struct {
	n     *NIC
	ID    uint32
	Ring  uint64
	Size  int
	CQ    *CQ
	VPort *VPort
	QP    *QP // non-nil when this SQ feeds an RDMA queue pair
	vf    *VF // owning virtual function; nil for PF queues

	Shaper *sim.TokenBucket
	Weight int // >0: ETS-arbitrated egress

	pi, ci   uint32
	inflight int
	mmio     map[uint32][]byte // WQEs pushed via WQE-by-MMIO, by index

	// state gates all processing; epoch invalidates in-flight fetch and
	// execute callbacks across an error/reset cycle so a stale DMA
	// completion cannot corrupt a recovered queue.
	state QueueState
	epoch uint32

	// Telemetry handles (nil-safe; see instrument).
	tDoorbells, tWQEMMIO    *telemetry.Counter
	tFetchReads             *telemetry.Counter
	tFetchedWQEs, tExecuted *telemetry.Counter
	tShaped                 *telemetry.Counter
	tFetchBatch             *telemetry.Histogram
}

// ringDoorbell advances the producer index (from a 4 B doorbell write).
func (sq *SQ) ringDoorbell(pi uint32) {
	sq.tDoorbells.Inc()
	if int32(pi-sq.pi) < 0 {
		return // stale doorbell
	}
	sq.pi = pi
	sq.kick()
}

// pushWQE accepts a 64 B descriptor written directly over MMIO
// (WQE-by-MMIO): the descriptor needs no ring read, and the write itself
// acts as a doorbell for one entry.
func (sq *SQ) pushWQE(b []byte) {
	sq.tWQEMMIO.Inc()
	sq.mmio[sq.pi] = append([]byte(nil), b...)
	sq.pi++
	sq.kick()
}

// sqFetchBatch is how many ring descriptors one PCIe read covers (the
// hardware fetches WQEs in cache-line bursts).
const sqFetchBatch = 4

// kick starts descriptor processing for any posted-but-unfetched entries,
// keeping at most SQWindow descriptors in flight. Ring-resident
// descriptors are fetched in batched reads; MMIO-pushed ones skip the
// fetch entirely.
func (sq *SQ) kick() {
	if sq.state != QueueReady {
		return
	}
	ep := sq.epoch
	for sq.ci+uint32(sq.inflight) != sq.pi && sq.inflight < sq.n.Prm.SQWindow {
		idx := sq.ci + uint32(sq.inflight)
		if b, ok := sq.mmio[idx]; ok {
			delete(sq.mmio, idx)
			sq.inflight++
			x := sq.n.getSQExec()
			x.sq, x.ep, x.idx, x.raw = sq, ep, idx, b
			sq.n.txEngine.AcquireArg(sq.n.Prm.TxPerWQE, sqExecRun, x)
			continue
		}
		// Batch consecutive ring descriptors into one read, stopping at
		// an MMIO-pushed entry, the window, the ring end, or PI.
		n := 0
		slot := idx % uint32(sq.Size)
		for n < sqFetchBatch &&
			sq.inflight+n < sq.n.Prm.SQWindow &&
			idx+uint32(n) != sq.pi &&
			int(slot)+n < sq.Size {
			if _, pushed := sq.mmio[idx+uint32(n)]; pushed {
				break
			}
			n++
		}
		sq.inflight += n
		addr := sq.Ring + uint64(slot)*SendWQESize
		first := idx
		count := n
		if f := sq.n.flt; f != nil && f.FailWQEFetch != nil && f.FailWQEFetch(sq) {
			sq.enterError(SynQueueErr)
			return
		}
		sq.tFetchReads.Inc()
		sq.tFetchedWQEs.Add(int64(count))
		sq.tFetchBatch.Observe(int64(count))
		sq.n.port.Read(addr, count*SendWQESize, func(c pcie.Completion) {
			if sq.epoch != ep {
				return // queue was reset while the fetch was in flight
			}
			if !c.OK() {
				sq.enterError(SynQueueErr)
				return
			}
			for i := 0; i < count; i++ {
				x := sq.n.getSQExec()
				x.sq, x.ep = sq, ep
				x.idx = first + uint32(i)
				x.raw = c.Data[i*SendWQESize : (i+1)*SendWQESize]
				sq.n.txEngine.AcquireArg(sq.n.Prm.TxPerWQE, sqExecRun, x)
			}
		})
	}
}

// execute runs one fetched descriptor through the transmit path.
func (sq *SQ) execute(idx uint32, raw []byte) {
	ep := sq.epoch
	sq.tExecuted.Inc()
	wqe, err := ParseSendWQE(raw)
	if err != nil || wqe.Opcode == opInvalid {
		sq.retire(ep, idx, CQE{Opcode: CQEError, Syndrome: SynBadWQE, Index: uint16(idx), Queue: sq.ID}, true)
		return
	}
	wqe.Index = uint16(idx)
	if wqe.Opcode == OpNop {
		sq.retire(ep, idx, CQE{Opcode: CQESend, Index: uint16(idx), Queue: sq.ID}, wqe.Signal)
		return
	}
	if wqe.Inline != nil {
		sq.dispatch(ep, idx, wqe, wqe.Inline)
		return
	}
	sq.n.port.Read(wqe.Addr, int(wqe.Len), func(c pcie.Completion) {
		if sq.epoch != ep {
			return
		}
		if !c.OK() {
			// Per-WQE gather failure: the slot is consumed with an
			// error completion; the queue itself stays Ready.
			sq.retire(ep, idx, CQE{Opcode: CQEError, Syndrome: SynGather, Index: uint16(idx), Queue: sq.ID}, true)
			return
		}
		sq.dispatch(ep, idx, wqe, c.Data)
	})
}

// dispatch hands the gathered payload to the QP transport or the Ethernet
// egress path.
func (sq *SQ) dispatch(ep uint32, idx uint32, wqe SendWQE, data []byte) {
	if sq.QP != nil {
		sq.QP.send(idx, wqe, data)
		// RDMA completions are written on ACK by the QP; the SQ slot
		// itself retires once the transport owns the message.
		sq.complete(idx)
		return
	}
	// Raw Ethernet: the payload is a complete frame. The transmit state
	// rides in a pooled record from dispatch through the shaper delay to
	// the egress-complete retire (see pool.go).
	x := sq.n.getTxSend()
	x.sq, x.ep, x.idx = sq, ep, idx
	x.frame, x.flowTag, x.signal = data, wqe.FlowTag, wqe.Signal
	if sq.Shaper != nil {
		if d := sq.Shaper.Reserve(len(data)); d > 0 {
			sq.tShaped.Inc()
			sq.n.eng.AfterArg(d, txSendFire, x)
			return
		}
	}
	txSendFire(x)
}

// complete frees the descriptor slot and pulls in more work.
func (sq *SQ) complete(idx uint32) {
	sq.ci++
	sq.inflight--
	sq.kick()
}

// retire completes the slot and optionally writes a CQE. ep guards
// against retiring into a queue that was reset while the work was in
// flight (e.g. an egress completion racing a queue flush).
func (sq *SQ) retire(ep uint32, idx uint32, cqe CQE, signal bool) {
	if sq.epoch != ep {
		return
	}
	sq.complete(idx)
	if signal && sq.CQ != nil {
		sq.CQ.Push(cqe)
	}
}

// CI exposes the consumer index for tests.
func (sq *SQ) CI() uint32 { return sq.ci }

// PI exposes the producer index — the newest work the queue has been
// told about via doorbell or WQE-by-MMIO.
func (sq *SQ) PI() uint32 { return sq.pi }

// Idle reports whether the queue has executed everything posted to it:
// Ready, with the consumer index caught up to the producer. Drain logic
// combines this with the FLD's own accounting to tell an executed-but-
// unsignaled tail apart from work still in flight.
func (sq *SQ) Idle() bool { return sq.state == QueueReady && sq.ci == sq.pi }

// --- Receive queue -------------------------------------------------------

type pendingRx struct {
	data []byte
	cqe  CQE
}

// RQ is a receive queue. Descriptors live in a ring (host memory in the
// FlexDriver design); the NIC fetches one when it needs a fresh buffer and
// — for MPRQ — packs multiple packets into it, one stride-aligned packet
// at a time.
type RQ struct {
	n          *NIC
	ID         uint32
	Ring       uint64
	Size       int
	CQ         *CQ
	StrideSize int
	vf         *VF // owning virtual function; nil for PF queues

	pi, ci uint32 // ci: next descriptor index to hand to placement

	// state gates packet placement; epoch invalidates in-flight
	// descriptor fetches across an error/reset cycle.
	state QueueState
	epoch uint32

	cur       *RecvWQE
	curIdx    uint32
	curOffset int
	backlog   []pendingRx

	// Descriptor prefetch pipeline: the NIC reads descriptors ahead in
	// cache-line batches with several reads in flight, like real
	// hardware — without this, per-packet descriptor fetch latency
	// would cap the receive rate at ~1/RTT.
	fetchIdx uint32 // next descriptor index to request
	inflight int
	fetchSeq uint64
	drainSeq uint64
	fetched  map[uint64][]RecvWQE
	ready    []RecvWQE

	// WastedBytes counts stride fragmentation (packet skipped to the
	// next buffer because the current one lacked room).
	WastedBytes int64

	// Telemetry handles (nil-safe; see instrument).
	tDoorbells            *telemetry.Counter
	tFetchReads           *telemetry.Counter
	tFetchedDescs         *telemetry.Counter
	tPlaced, tPlacedBytes *telemetry.Counter
}

const (
	rqFetchBatch    = 8 // descriptors per read (two cache lines)
	rqFetchWindow   = 4 // outstanding descriptor reads
	rqReadyLowWater = 16
)

// ringDoorbell advances the producer index: the consumer posted buffers.
func (rq *RQ) ringDoorbell(pi uint32) {
	rq.tDoorbells.Inc()
	if int32(pi-rq.pi) < 0 {
		return
	}
	rq.pi = pi
	rq.prefetch()
	rq.progress()
}

// prefetch keeps the descriptor pipeline full: batched ring reads, a few
// in flight, completions drained in order.
func (rq *RQ) prefetch() {
	if rq.state != QueueReady {
		return
	}
	ep := rq.epoch
	for rq.inflight < rqFetchWindow &&
		int32(rq.pi-rq.fetchIdx) > 0 &&
		len(rq.ready) < rqReadyLowWater {
		n := int(rq.pi - rq.fetchIdx)
		if n > rqFetchBatch {
			n = rqFetchBatch
		}
		// Don't wrap within one read.
		slot := rq.fetchIdx % uint32(rq.Size)
		if int(slot)+n > rq.Size {
			n = rq.Size - int(slot)
		}
		seq := rq.fetchSeq
		rq.fetchSeq++
		rq.fetchIdx += uint32(n)
		rq.inflight++
		addr := rq.Ring + uint64(slot)*RecvWQESize
		rq.tFetchReads.Inc()
		rq.tFetchedDescs.Add(int64(n))
		rq.n.port.Read(addr, n*RecvWQESize, func(c pcie.Completion) {
			if rq.epoch != ep {
				return // queue was reset while the fetch was in flight
			}
			rq.inflight--
			if !c.OK() {
				rq.enterError(SynQueueErr)
				return
			}
			batch := make([]RecvWQE, 0, n)
			for i := 0; i < n; i++ {
				w, err := ParseRecvWQE(c.Data[i*RecvWQESize:])
				if err != nil {
					rq.n.drop(DropRQBadDesc)
					continue
				}
				batch = append(batch, w)
			}
			if rq.fetched == nil {
				rq.fetched = make(map[uint64][]RecvWQE)
			}
			rq.fetched[seq] = batch
			// Drain in order so the consumer sees ring order even if
			// reads completed out of order.
			for {
				next, ok := rq.fetched[rq.drainSeq]
				if !ok {
					break
				}
				delete(rq.fetched, rq.drainSeq)
				rq.drainSeq++
				rq.ready = append(rq.ready, next...)
			}
			rq.prefetch()
			rq.progress()
		})
	}
}

// deliver enqueues a received packet for buffer placement. cqe carries the
// metadata the NIC already derived (flow tag, RSS hash, checksum).
func (rq *RQ) deliver(data []byte, cqe CQE) {
	if rq.state != QueueReady {
		// Error state: the queue counts and drops until the driver
		// resets it — it never wedges.
		rq.n.drop(DropRQError)
		return
	}
	// Bound the NIC-internal rx FIFO: a real NIC has shallow buffering
	// and drops when the host does not post buffers fast enough.
	if len(rq.backlog) >= 256 {
		rq.n.drop(DropRQOverflow)
		return
	}
	rq.backlog = append(rq.backlog, pendingRx{data: data, cqe: cqe})
	rq.progress()
}

// progress places backlog packets into buffers from the prefetched
// descriptor queue.
func (rq *RQ) progress() {
	for len(rq.backlog) > 0 {
		if rq.cur == nil {
			if len(rq.ready) == 0 {
				if rq.ci == rq.pi {
					// No posted buffers: drop from the tail like
					// hardware.
					rq.n.drop(DropRQNoBuffers)
					rq.backlog = rq.backlog[1:]
					continue
				}
				// Buffers posted but descriptors still in flight.
				rq.prefetch()
				return
			}
			w := rq.ready[0]
			rq.ready = rq.ready[1:]
			rq.cur = &w
			rq.curIdx = rq.ci
			rq.curOffset = 0
			rq.ci++
			rq.prefetch()
		}
		p := rq.backlog[0]
		rq.backlog = rq.backlog[1:]
		rq.place(p)
	}
}

// place writes one packet into the current buffer, advancing stride
// accounting and emitting the receive CQE.
func (rq *RQ) place(p pendingRx) {
	n := len(p.data)
	stride := rq.StrideSize
	if stride == 0 {
		stride = int(rq.cur.Len)
	}
	need := (n + stride - 1) / stride * stride
	if n > int(rq.cur.Len) {
		rq.n.drop(DropRxTooBig)
		return
	}
	if rq.curOffset+need > int(rq.cur.Len) {
		// Doesn't fit in the remaining strides: MPRQ fragmentation —
		// waste the tail and move to the next buffer.
		rq.WastedBytes += int64(int(rq.cur.Len) - rq.curOffset)
		rq.cur = nil
		rq.backlog = append([]pendingRx{p}, rq.backlog...)
		rq.progress()
		return
	}
	addr := rq.cur.Addr + uint64(rq.curOffset)
	strideIdx := rq.curOffset / stride
	bufIdx := rq.curIdx
	rq.curOffset += need
	last := rq.curOffset+stride > int(rq.cur.Len)
	if last {
		rq.cur = nil // buffer exhausted; descriptor consumed
	}
	cqe := p.cqe
	cqe.Opcode = orDefault(cqe.Opcode, CQERecv)
	cqe.Queue = rq.ID
	cqe.ByteCount = uint32(n)
	cqe.Index = uint16(bufIdx%uint32(rq.Size))<<8 | uint16(strideIdx&0xff)
	cqe.Addr = addr
	rq.n.Stats.RxPackets++
	rq.n.Stats.RxBytes += int64(n)
	rq.tPlaced.Inc()
	rq.tPlacedBytes.Add(int64(n))
	if t := rq.n.tlm; t != nil {
		t.rxPackets.Inc()
		t.rxBytes.Add(int64(n))
	}
	r := rq.n.getRxDone()
	r.rq, r.ep, r.cqe = rq, rq.epoch, cqe
	rq.n.port.WriteArg(addr, p.data, rqPlaceDone, r)
}

func orDefault(v, d uint8) uint8 {
	if v == 0 {
		return d
	}
	return v
}

// Posted reports how many buffers are currently posted and unconsumed.
func (rq *RQ) Posted() int { return int(rq.pi - rq.ci) }

// --- Completion queue ----------------------------------------------------

// CQ is a completion queue: the NIC DMA-writes 64 B CQEs into its ring and
// notifies the consumer.
type CQ struct {
	n     *NIC
	ID    uint32
	Ring  uint64
	Size  int
	pi    uint32
	onCQE func(CQE)
	vf    *VF // owning virtual function; nil for PF queues

	tCQEs *telemetry.Counter // nil-safe; see instrument
}

// Push DMA-writes one completion into the ring.
func (cq *CQ) Push(c CQE) {
	if f := cq.n.flt; f != nil && f.CQEError != nil && c.Opcode != CQEError && f.CQEError(cq) {
		// Fault plane: report this completion as failed. The work
		// actually executed; consumers see a per-WQE error and must
		// still release the slot (SynInjected is not queue-fatal).
		c.Opcode = CQEError
		c.Syndrome = SynInjected
	}
	cq.tCQEs.Inc()
	c.Counter = cq.pi
	slot := uint64(cq.pi) % uint64(cq.Size)
	cq.pi++
	addr := cq.Ring + slot*CQESize
	b := cq.n.eng.Bufs().Get(CQESize)
	c.MarshalInto(b)
	w := cq.n.getCQWrite()
	w.cq, w.c = cq, c
	cq.n.port.WriteOwnedArg(addr, b, cqPushDone, w)
}

// PI returns the number of completions ever pushed.
func (cq *CQ) PI() uint32 { return cq.pi }

// ConnectX6DxParams returns the timing profile of the newer-generation
// adapter the paper reports porting FlexDriver to with minimal changes
// (§6: "we have successfully tested our ConnectX-5-based design against
// ConnectX-6 Dx"): faster engines and a shorter pipeline, same
// driver-facing contract.
func ConnectX6DxParams() Params {
	p := DefaultParams()
	p.TxPerWQE = 5 * sim.Nanosecond // ~200 Mpps engine
	p.RxPerPkt = 5 * sim.Nanosecond
	p.PipelineDelay = 120 * sim.Nanosecond
	p.SQWindow = 64
	return p
}
