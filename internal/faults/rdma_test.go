package faults_test

// Go-back-N coverage through the fault plane: a deterministic single
// loss exercises the receiver's one-NAK-per-gap rule, an ACK blackhole
// pins the sender's window clamp, and a persistent blackhole drives the
// bounded retry budget into QP-Error and out again via ReconnectQPs.
// These tests live outside package faults so they can drive the public
// facade (which imports faults).

import (
	"bytes"
	"testing"

	"flexdriver"
	"flexdriver/internal/faults"
	"flexdriver/internal/nic"
	"flexdriver/internal/swdriver"
)

// rdmaBed cables two plain hosts and connects a verbs endpoint pair.
func rdmaBed(t *testing.T, nicPrm flexdriver.NICParams, msgBytes int) (
	*flexdriver.Engine, *flexdriver.Wire, *flexdriver.Host, *flexdriver.Host,
	*swdriver.RDMAEndpoint, *swdriver.RDMAEndpoint) {
	t.Helper()
	eng := flexdriver.NewEngine()
	a := flexdriver.NewHost(eng, "a", flexdriver.WithNIC(nicPrm))
	b := flexdriver.NewHost(eng, "b", flexdriver.WithNIC(nicPrm))
	w := flexdriver.ConnectWire(a.NIC, b.NIC, 25*flexdriver.Gbps, 500*flexdriver.Nanosecond)
	cfg := swdriver.RDMAConfig{SendEntries: 64, RecvEntries: 64, MaxMsgBytes: msgBytes, MTU: 1024}
	epA := a.Drv.NewRDMAEndpoint(cfg)
	epB := b.Drv.NewRDMAEndpoint(cfg)
	nic.ConnectQPs(epA.QP, epB.QP)
	return eng, w, a, b, epA, epB
}

func patterned(n int) []byte {
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	return msg
}

// TestGoBackNNaksOncePerLossEvent drops exactly one data packet (the
// 3rd A->B frame, deterministically via WireDropNth) out of an 8-packet
// message. The receiver sees five out-of-order successors but — per the
// nakedOnce rule — NAKs the gap exactly once, and the sender recovers
// by NAK-triggered go-back-N without ever hitting the retransmit timer.
func TestGoBackNNaksOncePerLossEvent(t *testing.T) {
	eng, w, a, b, epA, epB := rdmaBed(t, flexdriver.DefaultNICParams(), 16<<10)

	plan := faults.NewPlan(7, faults.Config{WireDropNth: []int64{3}, WireDir: 1})
	plan.AttachWire(w)

	var msgs [][]byte
	epB.OnMessage = func(data []byte) { msgs = append(msgs, append([]byte(nil), data...)) }
	msg := patterned(8 << 10) // 8 MTU-size packets
	epA.Send(msg)
	eng.Run()

	if plan.Injected.WireDropped != 1 {
		t.Fatalf("injected %d deterministic drops, want 1", plan.Injected.WireDropped)
	}
	if len(msgs) != 1 || !bytes.Equal(msgs[0], msg) {
		t.Fatalf("message not delivered exactly once intact (%d msgs)", len(msgs))
	}
	if got := b.NIC.Stats.Drops[nic.DropRDMAOutOfOrder]; got != 1 {
		t.Fatalf("receiver recorded %d out-of-order loss events (NAKs), want exactly 1", got)
	}
	if got := a.NIC.Stats.Drops[nic.DropRDMATimeout]; got != 0 {
		t.Fatalf("sender took %d timeout retransmits; NAK recovery should beat the timer", got)
	}
}

// TestWindowClampsUnderAckBlackhole blackholes every B->A frame (all
// ACKs lost) while A sends a 160-packet message: the sender must stop
// at exactly defaultQPWindow (128) packets in flight and hold there
// until the retransmit timer fires.
func TestWindowClampsUnderAckBlackhole(t *testing.T) {
	eng, w, a, _, epA, _ := rdmaBed(t, flexdriver.DefaultNICParams(), 256<<10)

	plan := faults.NewPlan(7, faults.Config{WireLoss: 1, WireDir: 2})
	plan.AttachWire(w)

	epA.Send(patterned(160 << 10)) // 160 packets, well past the window
	// Default RetransmitTimeout is 100us after the first transmission;
	// sample the clamp just before any retransmission can happen.
	eng.RunUntil(95 * flexdriver.Microsecond)

	const window = 128 // nic's defaultQPWindow
	if got := a.NIC.Stats.TxPackets; got != window {
		t.Fatalf("sender transmitted %d packets under ACK blackhole, want window clamp %d", got, window)
	}
	if got := w.Sent[0]; got != window {
		t.Fatalf("wire carried %d A->B frames, want %d", got, window)
	}
	if out := epA.QP.Outstanding(); out < window {
		t.Fatalf("only %d packets outstanding, want >= %d", out, window)
	}
}

// TestBoundedRetryEntersErrorAndReconnects keeps the ACK blackhole up
// until the sender exhausts its retry budget: the QP must enter the
// Error state after exactly MaxRetransmits+1 timeouts, flush the
// in-flight message with an error CQE, and — once the fault lifts and
// the driver runs ReconnectQPs — deliver new traffic again.
func TestBoundedRetryEntersErrorAndReconnects(t *testing.T) {
	prm := flexdriver.DefaultNICParams()
	prm.MaxRetransmits = 3
	eng, w, a, _, epA, epB := rdmaBed(t, prm, 16<<10)

	plan := faults.NewPlan(7, faults.Config{WireLoss: 1, WireDir: 2})
	plan.AttachWire(w)

	// Note the blackhole only kills B->A frames: the data itself still
	// reaches B and is delivered; it is the *sender* that, unable to see
	// ACKs, retries and errors out.
	var msgs [][]byte
	epB.OnMessage = func(data []byte) { msgs = append(msgs, append([]byte(nil), data...)) }
	epA.Send(patterned(4 << 10))
	eng.Run()

	if got := epA.QP.State(); got != nic.QueueError {
		t.Fatalf("QP state = %v after retry budget exhausted, want error", got)
	}
	// retries 1..MaxRetransmits retransmit; the next timeout trips the
	// budget. Every one is visible as a counted timeout drop.
	if got := a.NIC.Stats.Drops[nic.DropRDMATimeout]; got != int64(prm.MaxRetransmits)+1 {
		t.Fatalf("recorded %d timeout retransmits, want %d", got, prm.MaxRetransmits+1)
	}
	if a.NIC.Stats.QueueErrors != 1 {
		t.Fatalf("QueueErrors = %d, want 1", a.NIC.Stats.QueueErrors)
	}
	if a.Drv.CQEErrors != 1 || a.Drv.TxErrors != 1 {
		t.Fatalf("driver saw CQEErrors=%d TxErrors=%d, want 1/1 (flushed message)",
			a.Drv.CQEErrors, a.Drv.TxErrors)
	}

	// Driver-initiated recovery: lift the fault, reconnect, resend.
	w.Loss = nil
	nic.ReconnectQPs(epA.QP, epB.QP)
	if a.NIC.Stats.QueueRecoveries == 0 {
		t.Fatal("reconnect did not record a recovery")
	}
	msg := patterned(2 << 10)
	epA.Send(msg)
	eng.Run()
	if epA.QP.State() != nic.QueueReady {
		t.Fatalf("QP not Ready after reconnect: %v", epA.QP.State())
	}
	if len(msgs) == 0 || !bytes.Equal(msgs[len(msgs)-1], msg) {
		t.Fatalf("post-reconnect message not delivered intact (%d msgs)", len(msgs))
	}
}
