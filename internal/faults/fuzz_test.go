package faults

import (
	"reflect"
	"testing"
)

// FuzzParseSpecRoundTrip feeds arbitrary strings into ParseSpec. The
// parser must never panic; on every accepted spec the serialization must
// round-trip exactly: ParseSpec(cfg.String()) == cfg. This is the
// property the scenario shrinker relies on when it mutates a fault plan
// and re-emits it into a repro command.
//
// This fuzz target found two accepted-but-asymmetric inputs, both fixed
// in ParseSpec: NaN probabilities (pass the [0,1] range check because
// every NaN comparison is false, then never compare equal after a round
// trip) and negative durations (break the flap schedule's modulo
// arithmetic and the Start/Stop window).
func FuzzParseSpecRoundTrip(f *testing.F) {
	seeds := []string{
		"", "light", "heavy",
		"light,wire.loss=0.1",
		"pcie.drop=0.01,pcie.corrupt=0.005",
		"flap.every=400us,flap.for=3us",
		"db.loss=0.05,wqe.fail=0.01,cqe.err=0.01,accel.stall=0.02",
		"wire.loss=0.03,wire.dup=0.02,wire.delay=0.03,wire.delayby=2us",
		"wire.dir=1,wire.dropn=1;5;9",
		"start=150us,stop=950us",
		"wire.loss=NaN",
		"start=-5us",
		"wire.dropn=", "wire.dropn=1;;2", "=", ",,,", "light,light",
		"wire.loss=1e-300", "wire.loss=0.0000000001",
		"crash",
		"fld.reset.every=50us,fld.reset.for=7us",
		"nic.flr.every=30us,nic.flr.for=5us",
		"node.crash.every=60us,node.crash.for=8us,drv.crash.every=40us,drv.crash.for=3us",
		"sw.reboot.every=55us,sw.reboot.for=6us,part.every=45us,part.for=4us",
		"node.crash.every=-1us", "drv.crash.for=nan", "part.every=",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseSpec(spec)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		out := cfg.String()
		cfg2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("ParseSpec(%q) ok, but reparse of String %q failed: %v", spec, out, err)
		}
		if !reflect.DeepEqual(cfg, cfg2) {
			t.Fatalf("round trip mismatch for %q:\n first %+v\n via   %q\n second %+v", spec, cfg, out, cfg2)
		}
	})
}

// TestConfigStringZero pins the zero config's serialization: the empty
// string, which ParseSpec maps back to the zero config.
func TestConfigStringZero(t *testing.T) {
	var cfg Config
	if s := cfg.String(); s != "" {
		t.Fatalf("zero Config.String() = %q, want empty", s)
	}
}

// TestConfigStringPresets round-trips every preset through the
// serializer, so presets stay expressible as explicit specs (the
// shrinker expands a preset once and then narrows it field by field).
func TestConfigStringPresets(t *testing.T) {
	for name, cfg := range Presets {
		got, err := ParseSpec(cfg.String())
		if err != nil {
			t.Fatalf("preset %q: reparse of %q failed: %v", name, cfg.String(), err)
		}
		if !reflect.DeepEqual(cfg, got) {
			t.Fatalf("preset %q does not round-trip:\n have %+v\n got  %+v", name, cfg, got)
		}
	}
}

// TestParseSpecRejectsNonFinite pins the fuzz-found fixes.
func TestParseSpecRejectsNonFinite(t *testing.T) {
	for _, spec := range []string{"wire.loss=NaN", "pcie.drop=nan", "start=-5us", "flap.every=-1ns"} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted; want rejection", spec)
		}
	}
}
