package faults

import "flexdriver/internal/telemetry"

// planTelemetry mirrors the Injected tallies into a registry under
// injected/<class>. All accessors are nil-receiver safe (returning a
// nil Counter, whose Inc is itself a no-op), so an un-instrumented plan
// pays one nil check per injection.
type planTelemetry struct {
	cPCIeDrops, cPCIeCorrupts, cLinkFlapTLPs          *telemetry.Counter
	cDoorbellLosses, cWQEFetchFails, cCQEErrors       *telemetry.Counter
	cAccelStalls                                      *telemetry.Counter
	cWireLosses, cWireDups, cWireDelays, cWireDropped *telemetry.Counter
	cFLDResets, cNICFLRs, cNodeCrashes                *telemetry.Counter
	cDrvCrashes, cSwReboots, cPartitionDrops          *telemetry.Counter
}

// SetTelemetry mirrors injection tallies into sc as injected/<class>
// counters. The first registry wins: a plan shared by several nodes of
// one testbed is instrumented once, not once per node.
func (p *Plan) SetTelemetry(sc *telemetry.Scope) {
	if sc == nil || p.tlm != nil {
		return
	}
	p.tlm = &planTelemetry{
		cPCIeDrops:      sc.Counter("injected/pcie_drops"),
		cPCIeCorrupts:   sc.Counter("injected/pcie_corrupts"),
		cLinkFlapTLPs:   sc.Counter("injected/link_flap_tlps"),
		cDoorbellLosses: sc.Counter("injected/doorbell_losses"),
		cWQEFetchFails:  sc.Counter("injected/wqe_fetch_fails"),
		cCQEErrors:      sc.Counter("injected/cqe_errors"),
		cAccelStalls:    sc.Counter("injected/accel_stalls"),
		cWireLosses:     sc.Counter("injected/wire_losses"),
		cWireDups:       sc.Counter("injected/wire_dups"),
		cWireDelays:     sc.Counter("injected/wire_delays"),
		cWireDropped:    sc.Counter("injected/wire_dropped"),
		cFLDResets:      sc.Counter("injected/fld_resets"),
		cNICFLRs:        sc.Counter("injected/nic_flrs"),
		cNodeCrashes:    sc.Counter("injected/node_crashes"),
		cDrvCrashes:     sc.Counter("injected/drv_crashes"),
		cSwReboots:      sc.Counter("injected/sw_reboots"),
		cPartitionDrops: sc.Counter("injected/partition_drops"),
	}
}

func (t *planTelemetry) pcieDrops() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cPCIeDrops
}

func (t *planTelemetry) pcieCorrupts() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cPCIeCorrupts
}

func (t *planTelemetry) linkFlapTLPs() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cLinkFlapTLPs
}

func (t *planTelemetry) doorbellLosses() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cDoorbellLosses
}

func (t *planTelemetry) wqeFetchFails() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cWQEFetchFails
}

func (t *planTelemetry) cqeErrors() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cCQEErrors
}

func (t *planTelemetry) accelStalls() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cAccelStalls
}

func (t *planTelemetry) wireLosses() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cWireLosses
}

func (t *planTelemetry) wireDups() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cWireDups
}

func (t *planTelemetry) wireDelays() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cWireDelays
}

func (t *planTelemetry) wireDropped() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cWireDropped
}

func (t *planTelemetry) fldResets() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cFLDResets
}

func (t *planTelemetry) nicFLRs() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cNICFLRs
}

func (t *planTelemetry) nodeCrashes() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cNodeCrashes
}

func (t *planTelemetry) drvCrashes() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cDrvCrashes
}

func (t *planTelemetry) swReboots() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cSwReboots
}

func (t *planTelemetry) partitionDrops() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cPartitionDrops
}
