// Package faults is the testbed's deterministic fault-injection plane.
// A Plan is built from a seed and a Config and attached to the layers it
// perturbs (PCIe fabrics, NICs, FLDs, Ethernet links) through each
// layer's FaultHooks. Every attachment derives its own sim.Rand stream
// from (plan seed, attachment ordinal), and attachment order is fixed by
// construction order — so a (seed, config, workload) triple replays the
// exact same fault sequence on every run, and, because each stream is
// consumed by exactly one simulation shard, the sequence is identical
// whether the cluster runs sequentially or in parallel. The chaos
// experiment leans on this to assert recovery invariants under
// randomized-but-reproducible fault storms, printing the seed on failure
// so any storm can be replayed under a debugger.
package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"flexdriver/internal/fld"
	"flexdriver/internal/nic"
	"flexdriver/internal/pcie"
	"flexdriver/internal/sim"
	"flexdriver/internal/telemetry"
)

// Config selects fault classes and their rates. The zero value injects
// nothing. Probabilities are per-event (per TLP, per doorbell, per
// frame, ...) in [0, 1].
type Config struct {
	// Start/Stop bound the probabilistic injection window in engine
	// time; Stop == 0 means "no upper bound". Deterministic injections
	// (WireDropNth) ignore the window. A Plan only honors the window
	// once bound to an engine (the facade does this); unbound plans
	// treat every instant as active.
	Start, Stop sim.Duration

	// --- PCIe ---
	PCIeDrop    float64      // drop a TLP before serialization (no bytes on the wire)
	PCIeCorrupt float64      // poison a TLP: full wire traversal, payload discarded
	FlapEvery   sim.Duration // link-flap period; 0 disables flapping
	FlapFor     sim.Duration // the link is down in [k*FlapEvery, k*FlapEvery+FlapFor)

	// --- NIC ---
	DoorbellLoss float64 // lose a 4-byte doorbell MMIO write (self-healing)
	WQEFetchFail float64 // fail an SQ descriptor fetch -> queue-fatal SynQueueErr
	CQEErr       float64 // rewrite a success CQE into SynInjected

	// --- Accelerator ---
	AccelStall float64 // FLD drops a received frame instead of processing it

	// --- Ethernet wire (RDMA loss/dup/reorder live here) ---
	WireLoss    float64      // lose a frame after serialization
	WireDup     float64      // deliver a frame twice
	WireDelay   float64      // delay a frame (later frames overtake it: reordering)
	WireDelayBy sim.Duration // extra latency for delayed frames (default 2us)
	// WireDir restricts wire faults to one direction: 0 = both,
	// 1 = direction 0 only (end A transmits), 2 = direction 1 only.
	WireDir int
	// WireDropNth deterministically drops the Nth frame (1-based,
	// counted per direction among WireDir-matching frames), independent
	// of the window and the random stream. Used by tests that need one
	// exact loss.
	WireDropNth []int64

	// --- Failure domains (device/node crash–restart schedules) ---
	// Each class is a seeded schedule of crash episodes: the component
	// crashes around Start + Every, stays down for about For, restarts,
	// and the cycle repeats until Stop (Stop == 0 yields one episode).
	// Both intervals carry ±25% jitter drawn from a stream derived at
	// attach time, so the whole schedule is a pure function of
	// (seed, topology) — independent of event interleaving, hence
	// identical under sequential and parallel cluster runs. Episodes are
	// clamped so every component is back up by Stop; the recovery ladder
	// then has the drain phase to restore traffic.
	FLDResetEvery, FLDResetFor   sim.Duration // FLD/AFU hard reset
	NICFLREvery, NICFLRFor       sim.Duration // NIC function-level reset
	NodeCrashEvery, NodeCrashFor sim.Duration // full node (NIC+FLD+driver) crash–restart
	DrvCrashEvery, DrvCrashFor   sim.Duration // host driver process crash
	SwRebootEvery, SwRebootFor   sim.Duration // ToR switch reboot (FDB flushed)
	PartEvery, PartFor           sim.Duration // link partition/heal (both directions cut)
}

// Counts tallies injected faults per class. The crash classes count one
// injection per component per episode; PartitionDrops counts each frame
// a partitioned link swallowed (the partition window itself has no
// single injection instant — its cost is exactly its drops).
type Counts struct {
	PCIeDrops, PCIeCorrupts, LinkFlapTLPs         int64
	DoorbellLosses, WQEFetchFails, CQEErrors      int64
	AccelStalls                                   int64
	WireLosses, WireDups, WireDelays, WireDropped int64
	FLDResets, NICFLRs, NodeCrashes               int64
	DrvCrashes, SwReboots, PartitionDrops         int64
}

// Total returns the total number of injected faults.
func (c Counts) Total() int64 {
	return c.PCIeDrops + c.PCIeCorrupts + c.LinkFlapTLPs +
		c.DoorbellLosses + c.WQEFetchFails + c.CQEErrors +
		c.AccelStalls +
		c.WireLosses + c.WireDups + c.WireDelays + c.WireDropped +
		c.FLDResets + c.NICFLRs + c.NodeCrashes +
		c.DrvCrashes + c.SwReboots + c.PartitionDrops
}

// Plan is a bound fault-injection plan. One Plan may be attached to any
// number of fabrics/NICs/FLDs/links; each attachment derives a private
// random stream from the plan seed and its attachment ordinal, which
// keeps the whole testbed's fault sequence a pure function of
// (seed, config, construction order) — independent of event interleaving
// across shards, so sequential and parallel cluster runs inject
// identically.
type Plan struct {
	Cfg Config
	// Injected tallies what was actually injected, for reconciliation
	// against observed loss. Several shards feed it concurrently, hence
	// the atomic updates in note; read it only between runs.
	Injected Counts

	seed    int64
	nstream int64       // attachment-stream ordinal allocator
	eng     *sim.Engine // default clock for streams without their own

	tlm *planTelemetry
}

// NewPlan builds a plan drawing all probabilistic decisions from the
// given seed.
func NewPlan(seed int64, cfg Config) *Plan {
	if cfg.WireDelayBy == 0 {
		cfg.WireDelayBy = 2 * sim.Microsecond
	}
	return &Plan{Cfg: cfg, seed: seed}
}

// Bind attaches the plan's default clock so the Start/Stop window and
// link-flap schedule are evaluated against simulated time even for
// attachments that carry no engine of their own (bare links in tests).
// The facade calls this; unbound plans treat every instant as active.
func (p *Plan) Bind(eng *sim.Engine) { p.eng = eng }

// mixSeed derives a child-stream seed (splitmix64-style finalizer) from
// the plan seed and the attachment ordinal.
func mixSeed(seed, k int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(k)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// stream is one attachment's private fault source: a derived random
// stream plus the clock of the shard that evaluates the hooks. Exactly
// one shard draws from a given stream, so hook evaluation needs no
// locking and its sequence cannot depend on cross-shard interleaving.
type stream struct {
	p   *Plan
	rng *sim.Rand
	eng *sim.Engine
}

// newStream allocates the next attachment stream, evaluated on eng's
// clock (or the plan's default clock when eng is nil). Construction-time
// only: the ordinal sequence is part of the deterministic topology.
func (p *Plan) newStream(eng *sim.Engine) *stream {
	p.nstream++
	return &stream{p: p, rng: sim.NewRand(mixSeed(p.seed, p.nstream)), eng: eng}
}

func (s *stream) clock() *sim.Engine {
	if s.eng != nil {
		return s.eng
	}
	return s.p.eng
}

// active reports whether the probabilistic window is open.
func (s *stream) active() bool {
	eng := s.clock()
	if eng == nil {
		return true
	}
	now := eng.Now()
	if now < s.p.Cfg.Start {
		return false
	}
	return s.p.Cfg.Stop == 0 || now < s.p.Cfg.Stop
}

// flapDown reports whether the link-flap schedule has the link down.
func (s *stream) flapDown() bool {
	if s.p.Cfg.FlapEvery <= 0 || !s.active() {
		return false
	}
	eng := s.clock()
	if eng == nil {
		return false
	}
	return eng.Now()%s.p.Cfg.FlapEvery < s.p.Cfg.FlapFor
}

// hit draws one Bernoulli decision; the draw is skipped entirely when
// prob is zero so disabled fault classes don't consume random numbers.
func (s *stream) hit(prob float64) bool {
	return prob > 0 && s.active() && s.rng.Float64() < prob
}

// note records one injection in Counts and telemetry. Atomic on both:
// every shard with an attachment funnels into these shared tallies.
func (p *Plan) note(n *int64, c *telemetry.Counter) {
	atomic.AddInt64(n, 1)
	c.IncAtomic()
}

// --- failure domains ------------------------------------------------------

// Crashable is a component a failure-domain class can tear down and
// bring back: *nic.NIC, *fld.FLD, swdriver drivers and the Ethernet
// switch all implement it. Crash tears the component's state down
// (in-flight work is dropped with enumerated reasons); Restart makes it
// serviceable again — the driver-side recovery ladder is what actually
// restores traffic.
type Crashable interface {
	Crash()
	Restart()
}

// episode is one crash window: the component is down in [at, until).
type episode struct{ at, until sim.Time }

// maxEpisodes bounds a schedule so an unbounded window cannot flood the
// event queue at attach time.
const maxEpisodes = 64

// episodes precomputes one class's crash windows. The jittered schedule
// is drawn from a fresh attachment stream at construction time, so it
// depends only on (seed, ordinal) — never on event order. Every window
// is clamped to end by Stop: the component is always restarted inside
// the fault window, leaving the drain phase for recovery. With Stop == 0
// (no upper bound) a single episode is scheduled.
func (p *Plan) episodes(every, dur sim.Duration) []episode {
	if every <= 0 || dur <= 0 {
		return nil
	}
	p.nstream++
	rng := sim.NewRand(mixSeed(p.seed, p.nstream))
	jitter := func(d sim.Duration) sim.Duration {
		return sim.Duration(float64(d) * (0.75 + 0.5*rng.Float64()))
	}
	start, stop := p.Cfg.Start, p.Cfg.Stop
	var eps []episode
	t := start + jitter(every)
	for len(eps) < maxEpisodes {
		d := jitter(dur)
		if stop > 0 {
			if t >= stop {
				break
			}
			if t+d > stop {
				d = stop - t
			}
		}
		eps = append(eps, episode{at: t, until: t + d})
		if stop == 0 {
			break
		}
		t += jitter(every)
	}
	return eps
}

// attachCrash schedules one class's episodes on the component's own
// shard: every attached component crashes at each window's start and
// restarts at its end. note tallies one injection per component per
// episode at the crash instant.
func (p *Plan) attachCrash(eng *sim.Engine, every, dur sim.Duration, note func(), comps ...Crashable) {
	if eng == nil || len(comps) == 0 {
		return
	}
	// A component attached mid-run (a core instantiated by the tenancy
	// control plane, say) joins the remaining schedule; windows already
	// in the past don't apply to it.
	now := eng.Now()
	for _, ep := range p.episodes(every, dur) {
		ep := ep
		if ep.at < now {
			continue
		}
		eng.At(ep.at, func() {
			for _, c := range comps {
				note()
				c.Crash()
			}
		})
		eng.At(ep.until, func() {
			for _, c := range comps {
				c.Restart()
			}
		})
	}
}

// AttachFLDReset schedules FLD/AFU hard resets for one accelerator.
func (p *Plan) AttachFLDReset(eng *sim.Engine, f Crashable) {
	p.attachCrash(eng, p.Cfg.FLDResetEvery, p.Cfg.FLDResetFor,
		func() { p.note(&p.Injected.FLDResets, p.tlm.fldResets()) }, f)
}

// AttachNICFLR schedules NIC function-level resets for one adapter.
func (p *Plan) AttachNICFLR(eng *sim.Engine, n Crashable) {
	p.attachCrash(eng, p.Cfg.NICFLREvery, p.Cfg.NICFLRFor,
		func() { p.note(&p.Injected.NICFLRs, p.tlm.nicFLRs()) }, n)
}

// AttachNodeCrash schedules whole-node crash–restart cycles: every
// component of the node (NIC, FLD cores, driver) goes down and comes
// back together, as when an Innova loses power or a host reboots.
func (p *Plan) AttachNodeCrash(eng *sim.Engine, comps ...Crashable) {
	p.attachCrash(eng, p.Cfg.NodeCrashEvery, p.Cfg.NodeCrashFor,
		func() { p.note(&p.Injected.NodeCrashes, p.tlm.nodeCrashes()) }, comps...)
}

// AttachDriverCrash schedules host-driver process crashes.
func (p *Plan) AttachDriverCrash(eng *sim.Engine, d Crashable) {
	p.attachCrash(eng, p.Cfg.DrvCrashEvery, p.Cfg.DrvCrashFor,
		func() { p.note(&p.Injected.DrvCrashes, p.tlm.drvCrashes()) }, d)
}

// AttachSwitchReboot schedules ToR switch reboots.
func (p *Plan) AttachSwitchReboot(eng *sim.Engine, sw Crashable) {
	p.attachCrash(eng, p.Cfg.SwRebootEvery, p.Cfg.SwRebootFor,
		func() { p.note(&p.Injected.SwReboots, p.tlm.swReboots()) }, sw)
}

// --- attachment -----------------------------------------------------------

// AttachFabric installs the PCIe fault hooks (TLP drop, poison,
// link-flap windows) on a fabric, drawing from a stream private to this
// attachment on the fabric's own engine. No-op when no PCIe class is
// enabled.
func (p *Plan) AttachFabric(f *pcie.Fabric) {
	c := &p.Cfg
	if c.PCIeDrop == 0 && c.PCIeCorrupt == 0 && c.FlapEvery == 0 {
		return
	}
	s := p.newStream(f.Engine())
	f.SetFaults(&pcie.FaultHooks{
		Drop: func(_ *pcie.Port, _ telemetry.TLPType) bool {
			if s.hit(c.PCIeDrop) {
				p.note(&p.Injected.PCIeDrops, p.tlm.pcieDrops())
				return true
			}
			return false
		},
		Corrupt: func(_ *pcie.Port, _ telemetry.TLPType) bool {
			if s.hit(c.PCIeCorrupt) {
				p.note(&p.Injected.PCIeCorrupts, p.tlm.pcieCorrupts())
				return true
			}
			return false
		},
		Down: func(_ *pcie.Port) bool {
			if s.flapDown() {
				p.note(&p.Injected.LinkFlapTLPs, p.tlm.linkFlapTLPs())
				return true
			}
			return false
		},
	})
}

// AttachNIC installs the NIC fault hooks (doorbell loss, WQE-fetch
// failure, CQE errors) on a stream private to this attachment. No-op
// when no NIC class is enabled.
func (p *Plan) AttachNIC(n *nic.NIC) {
	c := &p.Cfg
	if c.DoorbellLoss == 0 && c.WQEFetchFail == 0 && c.CQEErr == 0 {
		return
	}
	s := p.newStream(n.Engine())
	n.SetFaults(&nic.FaultHooks{
		DropDoorbell: func(_ *nic.NIC) bool {
			if s.hit(c.DoorbellLoss) {
				p.note(&p.Injected.DoorbellLosses, p.tlm.doorbellLosses())
				return true
			}
			return false
		},
		FailWQEFetch: func(_ *nic.SQ) bool {
			if s.hit(c.WQEFetchFail) {
				p.note(&p.Injected.WQEFetchFails, p.tlm.wqeFetchFails())
				return true
			}
			return false
		},
		CQEError: func(_ *nic.CQ) bool {
			if s.hit(c.CQEErr) {
				p.note(&p.Injected.CQEErrors, p.tlm.cqeErrors())
				return true
			}
			return false
		},
	})
}

// AttachFLD installs the accelerator-stall hook. No-op when disabled.
func (p *Plan) AttachFLD(f *fld.FLD) {
	c := &p.Cfg
	if c.AccelStall == 0 {
		return
	}
	s := p.newStream(f.Engine())
	f.SetFaults(&fld.FaultHooks{
		AccelStall: func(_ *fld.FLD) bool {
			if s.hit(c.AccelStall) {
				p.note(&p.Injected.AccelStalls, p.tlm.accelStalls())
				return true
			}
			return false
		},
	})
}

// dirMatch applies the WireDir restriction.
func (p *Plan) dirMatch(dir int) bool {
	switch p.Cfg.WireDir {
	case 1:
		return dir == 0
	case 2:
		return dir == 1
	default:
		return true
	}
}

// AttachWire installs the wire fault hooks (loss, duplication,
// delay-induced reordering, deterministic Nth-frame drops) on a cable.
// Both directions of a cable run on one engine. No-op when no wire
// class is enabled.
func (p *Plan) AttachWire(w *nic.Wire) { p.AttachLink(&w.Link, w.Engine(), w.Engine()) }

// AttachLink installs the wire fault hooks on any Ethernet link — a
// point-to-point cable or one switch port's segment. eng0 and eng1 name
// the engines that evaluate direction 0 (A transmits) and direction 1
// (B transmits) respectively; on a switch port segment these are the
// endpoint's and the switch's shards, and each direction draws from its
// own attachment stream so the two shards never share a random state.
// Nil engines fall back to the plan's default clock (bare links in
// tests). WireDropNth ordinals count per link, per direction, so
// attaching the plan to every link of a cluster drops the Nth frame of
// each, independently. No-op when no wire class is enabled.
func (p *Plan) AttachLink(l *nic.Link, eng0, eng1 *sim.Engine) {
	c := &p.Cfg
	// Partition windows are precomputed per link, once, and then read
	// passively from both directions' Loss hooks — the two shards share
	// only immutable schedule data, never a random stream.
	parts := p.episodes(c.PartEvery, c.PartFor)
	if c.WireLoss == 0 && c.WireDup == 0 && c.WireDelay == 0 &&
		len(c.WireDropNth) == 0 && len(parts) == 0 {
		return
	}
	// Per-direction streams and ordinals: element dir is only ever
	// touched by dir's engine, so the pair needs no lock.
	ss := [2]*stream{p.newStream(eng0), p.newStream(eng1)}
	seq := new([2]int64)
	partitioned := func(dir int) bool {
		if len(parts) == 0 {
			return false
		}
		eng := ss[dir].clock()
		if eng == nil {
			return false
		}
		now := eng.Now()
		for _, ep := range parts {
			if now >= ep.at && now < ep.until {
				return true
			}
		}
		return false
	}
	l.Loss = func(dir int, _ []byte) bool {
		// A partitioned link swallows every frame in both directions,
		// regardless of WireDir; each casualty is tallied so frame
		// conservation can attribute it.
		if partitioned(dir) {
			p.note(&p.Injected.PartitionDrops, p.tlm.partitionDrops())
			return true
		}
		if !p.dirMatch(dir) {
			return false
		}
		seq[dir]++
		for _, k := range c.WireDropNth {
			if seq[dir] == k {
				p.note(&p.Injected.WireDropped, p.tlm.wireDropped())
				return true
			}
		}
		if ss[dir].hit(c.WireLoss) {
			p.note(&p.Injected.WireLosses, p.tlm.wireLosses())
			return true
		}
		return false
	}
	l.Dup = func(dir int, _ []byte) bool {
		if !p.dirMatch(dir) {
			return false
		}
		if ss[dir].hit(c.WireDup) {
			p.note(&p.Injected.WireDups, p.tlm.wireDups())
			return true
		}
		return false
	}
	l.Delay = func(dir int, _ []byte) sim.Duration {
		if !p.dirMatch(dir) {
			return 0
		}
		if ss[dir].hit(c.WireDelay) {
			p.note(&p.Injected.WireDelays, p.tlm.wireDelays())
			return c.WireDelayBy
		}
		return 0
	}
}

// --- spec parsing ---------------------------------------------------------

// Presets name ready-made configurations for the -faults CLI flag.
var Presets = map[string]Config{
	// light exercises every recovery path at rates the echo workload
	// fully absorbs.
	"light": {
		PCIeDrop: 0.002, PCIeCorrupt: 0.001,
		DoorbellLoss: 0.01, WQEFetchFail: 0.002, CQEErr: 0.002,
		AccelStall: 0.005,
		WireLoss:   0.01, WireDup: 0.005, WireDelay: 0.01,
	},
	// heavy is a storm: every class at rates that keep multiple
	// recoveries in flight at once.
	"heavy": {
		PCIeDrop: 0.01, PCIeCorrupt: 0.005,
		FlapEvery: 400 * sim.Microsecond, FlapFor: 3 * sim.Microsecond,
		DoorbellLoss: 0.05, WQEFetchFail: 0.01, CQEErr: 0.01,
		AccelStall: 0.02,
		WireLoss:   0.03, WireDup: 0.02, WireDelay: 0.03,
	},
	// crash layers the device/node failure domains over light packet
	// noise: every class of the recovery ladder fires at least once in a
	// sub-millisecond window.
	"crash": {
		DoorbellLoss: 0.01, WireLoss: 0.005,
		FLDResetEvery: 150 * sim.Microsecond, FLDResetFor: 4 * sim.Microsecond,
		NICFLREvery: 120 * sim.Microsecond, NICFLRFor: 4 * sim.Microsecond,
		NodeCrashEvery: 300 * sim.Microsecond, NodeCrashFor: 8 * sim.Microsecond,
		DrvCrashEvery: 200 * sim.Microsecond, DrvCrashFor: 6 * sim.Microsecond,
		SwRebootEvery: 400 * sim.Microsecond, SwRebootFor: 4 * sim.Microsecond,
		PartEvery: 250 * sim.Microsecond, PartFor: 6 * sim.Microsecond,
	},
}

// ParseSpec parses a fault specification for the -faults flag: either a
// preset name ("light", "heavy") or comma-separated key=value pairs,
// optionally starting from a preset ("light,wire.loss=0.1"). Keys:
//
//	pcie.drop pcie.corrupt flap.every flap.for
//	db.loss wqe.fail cqe.err accel.stall
//	wire.loss wire.dup wire.delay wire.delayby wire.dir wire.dropn
//	fld.reset.every fld.reset.for nic.flr.every nic.flr.for
//	node.crash.every node.crash.for drv.crash.every drv.crash.for
//	sw.reboot.every sw.reboot.for part.every part.for
//	start stop
//
// Probabilities are floats; durations use Go syntax ("200us");
// wire.dropn is a semicolon-separated 1-based ordinal list ("1;5;9").
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "=") {
			pre, ok := Presets[part]
			if !ok || i != 0 {
				return cfg, fmt.Errorf("faults: unknown preset %q", part)
			}
			cfg = pre
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		var err error
		switch key {
		case "pcie.drop":
			cfg.PCIeDrop, err = parseProb(val)
		case "pcie.corrupt":
			cfg.PCIeCorrupt, err = parseProb(val)
		case "flap.every":
			cfg.FlapEvery, err = parseDur(val)
		case "flap.for":
			cfg.FlapFor, err = parseDur(val)
		case "db.loss":
			cfg.DoorbellLoss, err = parseProb(val)
		case "wqe.fail":
			cfg.WQEFetchFail, err = parseProb(val)
		case "cqe.err":
			cfg.CQEErr, err = parseProb(val)
		case "accel.stall":
			cfg.AccelStall, err = parseProb(val)
		case "wire.loss":
			cfg.WireLoss, err = parseProb(val)
		case "wire.dup":
			cfg.WireDup, err = parseProb(val)
		case "wire.delay":
			cfg.WireDelay, err = parseProb(val)
		case "wire.delayby":
			cfg.WireDelayBy, err = parseDur(val)
		case "wire.dir":
			cfg.WireDir, err = strconv.Atoi(val)
			if err == nil && (cfg.WireDir < 0 || cfg.WireDir > 2) {
				err = fmt.Errorf("must be 0 (both), 1 or 2")
			}
		case "wire.dropn":
			for _, s := range strings.Split(val, ";") {
				var n int64
				n, err = strconv.ParseInt(strings.TrimSpace(s), 10, 64)
				if err != nil {
					break
				}
				cfg.WireDropNth = append(cfg.WireDropNth, n)
			}
		case "fld.reset.every":
			cfg.FLDResetEvery, err = parseDur(val)
		case "fld.reset.for":
			cfg.FLDResetFor, err = parseDur(val)
		case "nic.flr.every":
			cfg.NICFLREvery, err = parseDur(val)
		case "nic.flr.for":
			cfg.NICFLRFor, err = parseDur(val)
		case "node.crash.every":
			cfg.NodeCrashEvery, err = parseDur(val)
		case "node.crash.for":
			cfg.NodeCrashFor, err = parseDur(val)
		case "drv.crash.every":
			cfg.DrvCrashEvery, err = parseDur(val)
		case "drv.crash.for":
			cfg.DrvCrashFor, err = parseDur(val)
		case "sw.reboot.every":
			cfg.SwRebootEvery, err = parseDur(val)
		case "sw.reboot.for":
			cfg.SwRebootFor, err = parseDur(val)
		case "part.every":
			cfg.PartEvery, err = parseDur(val)
		case "part.for":
			cfg.PartFor, err = parseDur(val)
		case "start":
			cfg.Start, err = parseDur(val)
		case "stop":
			cfg.Stop, err = parseDur(val)
		default:
			return cfg, fmt.Errorf("faults: unknown key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("faults: bad value for %s: %v", key, err)
		}
	}
	return cfg, nil
}

func parseProb(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	// NaN must be rejected explicitly: it passes both range comparisons
	// below (every comparison with NaN is false), yet never round-trips
	// through String (NaN != NaN), and a NaN rate silently disables the
	// class. Found by FuzzParseSpecRoundTrip.
	if math.IsNaN(v) || v < 0 || v > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", v)
	}
	return v, nil
}

func parseDur(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	// Negative durations would put the injection window or flap schedule
	// before time zero; flapDown's modulo arithmetic also misbehaves on
	// them. Found by FuzzParseSpecRoundTrip.
	if d < 0 {
		return 0, fmt.Errorf("duration %v is negative", d)
	}
	return sim.Duration(d.Nanoseconds()) * sim.Nanosecond, nil
}

// formatDur renders a duration in the Go syntax ParseSpec accepts.
// ParseSpec only produces whole-nanosecond durations, so the conversion
// is lossless.
func formatDur(d sim.Duration) string {
	return time.Duration(int64(d / sim.Nanosecond)).String()
}

// String serializes the config as a ParseSpec-compatible key=value spec:
// ParseSpec(cfg.String()) reproduces cfg exactly (the round trip is
// fuzzed). Zero-valued classes are omitted; the zero config renders as
// the empty string. WireDelayBy is emitted only when it differs from the
// parse-time zero value, so specs stay minimal.
func (c Config) String() string {
	var parts []string
	add := func(key string, v float64) {
		if v != 0 {
			parts = append(parts, key+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	addDur := func(key string, d sim.Duration) {
		if d != 0 {
			parts = append(parts, key+"="+formatDur(d))
		}
	}
	add("pcie.drop", c.PCIeDrop)
	add("pcie.corrupt", c.PCIeCorrupt)
	addDur("flap.every", c.FlapEvery)
	addDur("flap.for", c.FlapFor)
	add("db.loss", c.DoorbellLoss)
	add("wqe.fail", c.WQEFetchFail)
	add("cqe.err", c.CQEErr)
	add("accel.stall", c.AccelStall)
	add("wire.loss", c.WireLoss)
	add("wire.dup", c.WireDup)
	add("wire.delay", c.WireDelay)
	addDur("wire.delayby", c.WireDelayBy)
	if c.WireDir != 0 {
		parts = append(parts, "wire.dir="+strconv.Itoa(c.WireDir))
	}
	if len(c.WireDropNth) > 0 {
		ns := make([]string, len(c.WireDropNth))
		for i, n := range c.WireDropNth {
			ns[i] = strconv.FormatInt(n, 10)
		}
		parts = append(parts, "wire.dropn="+strings.Join(ns, ";"))
	}
	addDur("fld.reset.every", c.FLDResetEvery)
	addDur("fld.reset.for", c.FLDResetFor)
	addDur("nic.flr.every", c.NICFLREvery)
	addDur("nic.flr.for", c.NICFLRFor)
	addDur("node.crash.every", c.NodeCrashEvery)
	addDur("node.crash.for", c.NodeCrashFor)
	addDur("drv.crash.every", c.DrvCrashEvery)
	addDur("drv.crash.for", c.DrvCrashFor)
	addDur("sw.reboot.every", c.SwRebootEvery)
	addDur("sw.reboot.for", c.SwRebootFor)
	addDur("part.every", c.PartEvery)
	addDur("part.for", c.PartFor)
	addDur("start", c.Start)
	addDur("stop", c.Stop)
	return strings.Join(parts, ",")
}
