package faults

import (
	"reflect"
	"testing"

	"flexdriver/internal/nic"
	"flexdriver/internal/sim"
)

// driveWire pushes n frames in each direction through a plan's wire
// hooks and returns the injection tallies. The wire is a bare struct —
// only the hook closures are exercised, so the tallies depend on
// nothing but the plan's own random stream.
func driveWire(seed int64, cfg Config, n int) Counts {
	p := NewPlan(seed, cfg)
	w := &nic.Wire{}
	p.AttachWire(w)
	frame := make([]byte, 64)
	for i := 0; i < n; i++ {
		for dir := 0; dir < 2; dir++ {
			if w.Loss(dir, frame) {
				continue
			}
			w.Dup(dir, frame)
			w.Delay(dir, frame)
		}
	}
	return p.Injected
}

// TestPlanDeterminism: identical (seed, config) pairs must inject the
// identical fault sequence — that is the whole point of the plan — and
// a different seed must diverge (or the "determinism" would be the
// degenerate kind).
func TestPlanDeterminism(t *testing.T) {
	cfg := Config{WireLoss: 0.2, WireDup: 0.1, WireDelay: 0.3}
	a := driveWire(42, cfg, 500)
	b := driveWire(42, cfg, 500)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Total() == 0 {
		t.Fatal("plan injected nothing; the determinism check is vacuous")
	}
	c := driveWire(43, cfg, 500)
	if a == c {
		t.Fatalf("different seeds produced identical tallies %+v — stream not seeded", a)
	}
}

// TestWindowGatesInjection: outside [Start, Stop) the plan is inert;
// unbound plans (no engine) are always active.
func TestWindowGatesInjection(t *testing.T) {
	cfg := Config{WireLoss: 1, Start: 10 * sim.Microsecond, Stop: 20 * sim.Microsecond}
	eng := sim.NewEngine()
	p := NewPlan(1, cfg)
	p.Bind(eng)
	w := &nic.Wire{}
	p.AttachWire(w)

	frame := make([]byte, 64)
	if w.Loss(0, frame) {
		t.Fatal("injected before the window opened")
	}
	eng.At(15*sim.Microsecond, func() {
		if !w.Loss(0, frame) {
			t.Error("no injection inside the window despite probability 1")
		}
	})
	eng.At(25*sim.Microsecond, func() {
		if w.Loss(0, frame) {
			t.Error("injected after the window closed")
		}
	})
	eng.Run()
	if p.Injected.WireLosses != 1 {
		t.Fatalf("WireLosses = %d, want exactly 1 (the in-window frame)", p.Injected.WireLosses)
	}
}

// TestDeterministicDropOrdinals: WireDropNth drops exactly the named
// per-direction ordinals, ignores the window, and counts separately
// from probabilistic losses.
func TestDeterministicDropOrdinals(t *testing.T) {
	p := NewPlan(1, Config{WireDropNth: []int64{2, 5}, WireDir: 1})
	w := &nic.Wire{}
	p.AttachWire(w)
	frame := make([]byte, 64)

	var dropped []int
	for i := 1; i <= 6; i++ {
		if w.Loss(0, frame) {
			dropped = append(dropped, i)
		}
	}
	if len(dropped) != 2 || dropped[0] != 2 || dropped[1] != 5 {
		t.Fatalf("dir-0 drops at ordinals %v, want [2 5]", dropped)
	}
	// Direction 1 is excluded by WireDir and keeps its own ordinal count.
	for i := 1; i <= 6; i++ {
		if w.Loss(1, frame) {
			t.Fatalf("dir-1 frame %d dropped despite WireDir=1", i)
		}
	}
	if p.Injected.WireDropped != 2 || p.Injected.WireLosses != 0 {
		t.Fatalf("tallies = %+v, want WireDropped=2 WireLosses=0", p.Injected)
	}
}

// TestAttachLinkPerLinkOrdinals: when one plan serves several links —
// the switched-cluster case — WireDropNth counts per link, so every
// cable drops its own Nth frame rather than sharing one global ordinal
// stream.
func TestAttachLinkPerLinkOrdinals(t *testing.T) {
	p := NewPlan(1, Config{WireDropNth: []int64{2}})
	var l1, l2 nic.Link
	p.AttachLink(&l1, nil, nil)
	p.AttachLink(&l2, nil, nil)
	frame := make([]byte, 64)

	for name, l := range map[string]*nic.Link{"first": &l1, "second": &l2} {
		var dropped []int
		for i := 1; i <= 4; i++ {
			if l.Loss(0, frame) {
				dropped = append(dropped, i)
			}
		}
		if len(dropped) != 1 || dropped[0] != 2 {
			t.Errorf("%s link dropped ordinals %v, want [2]", name, dropped)
		}
	}
	if p.Injected.WireDropped != 2 {
		t.Fatalf("WireDropped = %d, want 2 (one per link)", p.Injected.WireDropped)
	}
}

func TestParseSpec(t *testing.T) {
	// Preset lookup.
	got, err := ParseSpec("heavy")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, Presets["heavy"]) {
		t.Fatalf("ParseSpec(heavy) = %+v, want the heavy preset", got)
	}

	// Preset + overrides: later keys win over the preset's values.
	got, err = ParseSpec("light, wire.loss=0.5, flap.every=200us, wire.dir=2")
	if err != nil {
		t.Fatal(err)
	}
	want := Presets["light"]
	want.WireLoss = 0.5
	want.FlapEvery = 200 * sim.Microsecond
	want.WireDir = 2
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("preset+override = %+v, want %+v", got, want)
	}

	// Standalone key=value pairs, including ordinal lists and durations.
	got, err = ParseSpec("wire.dropn=1;5;9, start=100us, stop=1ms, pcie.drop=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.WireDropNth) != 3 || got.WireDropNth[0] != 1 || got.WireDropNth[2] != 9 {
		t.Fatalf("WireDropNth = %v, want [1 5 9]", got.WireDropNth)
	}
	if got.Start != 100*sim.Microsecond || got.Stop != sim.Millisecond || got.PCIeDrop != 0.25 {
		t.Fatalf("parsed = %+v", got)
	}

	// Empty spec is the zero config (no faults).
	if got, err = ParseSpec(""); err != nil || !reflect.DeepEqual(got, Config{}) {
		t.Fatalf("ParseSpec(\"\") = %+v, %v", got, err)
	}

	// Errors: unknown preset/key, out-of-range probability, preset not
	// first, bad direction.
	for _, bad := range []string{
		"medium",
		"wire.loss=1.5",
		"nonsense.key=1",
		"wire.loss=0.1,heavy",
		"wire.dir=3",
		"flap.every=fast",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
}

// TestParseSpecFailureDomains table-tests the crash-class keys: each
// class parses into its Config pair and round-trips through String, and
// every malformed form — unknown class, malformed rate, empty value — is
// rejected with a diagnostic naming the offending key.
func TestParseSpecFailureDomains(t *testing.T) {
	valid := []struct {
		spec string
		want Config
	}{
		{"fld.reset.every=50us,fld.reset.for=7us",
			Config{FLDResetEvery: 50 * sim.Microsecond, FLDResetFor: 7 * sim.Microsecond}},
		{"nic.flr.every=30us,nic.flr.for=5us",
			Config{NICFLREvery: 30 * sim.Microsecond, NICFLRFor: 5 * sim.Microsecond}},
		{"node.crash.every=60us,node.crash.for=8us",
			Config{NodeCrashEvery: 60 * sim.Microsecond, NodeCrashFor: 8 * sim.Microsecond}},
		{"drv.crash.every=40us,drv.crash.for=3us",
			Config{DrvCrashEvery: 40 * sim.Microsecond, DrvCrashFor: 3 * sim.Microsecond}},
		{"sw.reboot.every=55us,sw.reboot.for=6us",
			Config{SwRebootEvery: 55 * sim.Microsecond, SwRebootFor: 6 * sim.Microsecond}},
		{"part.every=45us,part.for=4us",
			Config{PartEvery: 45 * sim.Microsecond, PartFor: 4 * sim.Microsecond}},
	}
	for _, tc := range valid {
		got, err := ParseSpec(tc.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
		if rt, err := ParseSpec(got.String()); err != nil || !reflect.DeepEqual(got, rt) {
			t.Errorf("%q does not round-trip: %+v vs %+v (%v)", tc.spec, got, rt, err)
		}
	}

	invalid := []struct {
		name, spec string
	}{
		{"unknown class", "afu.crash.every=50us"},
		{"unknown subkey", "node.crash.often=50us"},
		{"malformed rate", "nic.flr.every=fast"},
		{"rate not a duration", "drv.crash.for=0.5"},
		{"negative duration", "fld.reset.for=-3us"},
		{"empty value", "sw.reboot.every="},
		{"missing value", "part.every"},
	}
	for _, tc := range invalid {
		if _, err := ParseSpec(tc.spec); err == nil {
			t.Errorf("%s: ParseSpec(%q) accepted, want error", tc.name, tc.spec)
		}
	}
}
