package trace

import (
	"math"
	"testing"

	"flexdriver/internal/sim"
)

func TestFixed(t *testing.T) {
	d := Fixed(512)
	r := sim.NewRand(1)
	for i := 0; i < 100; i++ {
		if d.Sample(r) != 512 {
			t.Fatal("fixed distribution wandered")
		}
	}
	if d.Mean() != 512 {
		t.Fatalf("mean = %v", d.Mean())
	}
}

func TestIMC2010Shape(t *testing.T) {
	d := IMC2010()
	// Small-packet-dominated data-center traffic: mean ~250 B.
	if m := d.Mean(); m < 180 || m > 350 {
		t.Fatalf("IMC mean = %.0f B, want ~250", m)
	}
	r := sim.NewRand(2)
	counts := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	// Sampling must roughly follow the configured weights.
	if frac := float64(counts[64]) / n; math.Abs(frac-0.70) > 0.02 {
		t.Fatalf("64 B fraction = %.3f, want ~0.70", frac)
	}
	if frac := float64(counts[1500]) / n; math.Abs(frac-0.10) > 0.02 {
		t.Fatalf("1500 B fraction = %.3f, want ~0.10", frac)
	}
	// Empirical mean close to analytic mean.
	var sum float64
	for s, c := range counts {
		sum += float64(s * c)
	}
	if got := sum / n; math.Abs(got-d.Mean()) > 10 {
		t.Fatalf("empirical mean %.1f vs analytic %.1f", got, d.Mean())
	}
}

// TestMeanNonUnitWeights checks Mean() normalizes by the weight sum, so
// weights need not add to 1.
func TestMeanNonUnitWeights(t *testing.T) {
	// Weights sum to 8: expected size = (10*6 + 30*2) / 8 = 15.
	d := NewSizeDist([]int{10, 30}, []float64{6, 2})
	if m := d.Mean(); math.Abs(m-15) > 1e-12 {
		t.Fatalf("mean = %v, want 15", m)
	}
	// Scaling all weights must not change the mean.
	scaled := NewSizeDist([]int{10, 30}, []float64{600, 200})
	if math.Abs(scaled.Mean()-d.Mean()) > 1e-12 {
		t.Fatalf("mean changed under weight scaling: %v vs %v", scaled.Mean(), d.Mean())
	}
}

// TestEmpiricalMeanMatchesAnalytic draws from a non-unit-weight
// distribution with a seeded generator and compares the sample mean to
// Mean().
func TestEmpiricalMeanMatchesAnalytic(t *testing.T) {
	d := NewSizeDist([]int{64, 512, 1500}, []float64{5, 2, 3})
	r := sim.NewRand(42)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(r))
	}
	got := sum / n
	want := d.Mean()
	// ±1% of the analytic mean is ~5 sigma at this sample count.
	if math.Abs(got-want) > 0.01*want {
		t.Fatalf("empirical mean %.2f vs analytic %.2f", got, want)
	}
}

// TestFixedEdge covers the degenerate single-size distribution: its
// support is one size, its mean is that size, and sampling never leaves
// it even at the cumulative boundary u == 1.
func TestFixedEdge(t *testing.T) {
	d := Fixed(1500)
	if sz := d.Sizes(); len(sz) != 1 || sz[0] != 1500 {
		t.Fatalf("Sizes() = %v, want [1500]", sz)
	}
	if d.Mean() != 1500 {
		t.Fatalf("mean = %v", d.Mean())
	}
	r := sim.NewRand(9)
	for i := 0; i < 1000; i++ {
		if got := d.Sample(r); got != 1500 {
			t.Fatalf("sample = %d, want 1500", got)
		}
	}
}

func TestWeightsNormalized(t *testing.T) {
	d := NewSizeDist([]int{10, 20}, []float64{3, 1})
	r := sim.NewRand(3)
	small := 0
	const n = 40000
	for i := 0; i < n; i++ {
		if d.Sample(r) == 10 {
			small++
		}
	}
	if frac := float64(small) / n; math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("unnormalized weights: frac=%.3f", frac)
	}
}
