package trace

import (
	"math"
	"testing"

	"flexdriver/internal/sim"
)

func TestFixed(t *testing.T) {
	d := Fixed(512)
	r := sim.NewRand(1)
	for i := 0; i < 100; i++ {
		if d.Sample(r) != 512 {
			t.Fatal("fixed distribution wandered")
		}
	}
	if d.Mean() != 512 {
		t.Fatalf("mean = %v", d.Mean())
	}
}

func TestIMC2010Shape(t *testing.T) {
	d := IMC2010()
	// Small-packet-dominated data-center traffic: mean ~250 B.
	if m := d.Mean(); m < 180 || m > 350 {
		t.Fatalf("IMC mean = %.0f B, want ~250", m)
	}
	r := sim.NewRand(2)
	counts := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	// Sampling must roughly follow the configured weights.
	if frac := float64(counts[64]) / n; math.Abs(frac-0.70) > 0.02 {
		t.Fatalf("64 B fraction = %.3f, want ~0.70", frac)
	}
	if frac := float64(counts[1500]) / n; math.Abs(frac-0.10) > 0.02 {
		t.Fatalf("1500 B fraction = %.3f, want ~0.10", frac)
	}
	// Empirical mean close to analytic mean.
	var sum float64
	for s, c := range counts {
		sum += float64(s * c)
	}
	if got := sum / n; math.Abs(got-d.Mean()) > 10 {
		t.Fatalf("empirical mean %.1f vs analytic %.1f", got, d.Mean())
	}
}

func TestWeightsNormalized(t *testing.T) {
	d := NewSizeDist([]int{10, 20}, []float64{3, 1})
	r := sim.NewRand(3)
	small := 0
	const n = 40000
	for i := 0; i < n; i++ {
		if d.Sample(r) == 10 {
			small++
		}
	}
	if frac := float64(small) / n; math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("unnormalized weights: frac=%.3f", frac)
	}
}
