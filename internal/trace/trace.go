// Package trace provides the workload generators the experiments drive
// traffic with: fixed-size streams and an IMC-2010-like data-center
// packet-size mixture (Benson et al., "Network Traffic Characteristics of
// Data Centers in the Wild"), which the paper's §8.1.1 mixed-size
// forwarding experiment replays.
package trace

import "flexdriver/internal/sim"

// SizeDist is a discrete packet-size distribution.
type SizeDist struct {
	sizes   []int
	weights []float64
	cum     []float64
}

// NewSizeDist builds a distribution from parallel size/weight slices.
func NewSizeDist(sizes []int, weights []float64) *SizeDist {
	d := &SizeDist{sizes: sizes, weights: weights}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	acc := 0.0
	for _, w := range weights {
		acc += w / sum
		d.cum = append(d.cum, acc)
	}
	return d
}

// Fixed returns a degenerate single-size distribution.
func Fixed(size int) *SizeDist {
	return NewSizeDist([]int{size}, []float64{1})
}

// IMC2010 approximates the bimodal data-center packet-size distribution
// of the IMC 2010 study: most packets are small (ACK/control-dominated,
// under 200 B) with a secondary mode at full MTU. Mean ~= 246 B.
func IMC2010() *SizeDist {
	return NewSizeDist(
		[]int{64, 128, 256, 576, 1500},
		[]float64{0.70, 0.10, 0.06, 0.04, 0.10},
	)
}

// Sample draws one packet size.
func (d *SizeDist) Sample(r *sim.Rand) int {
	u := r.Float64()
	for i, c := range d.cum {
		if u <= c {
			return d.sizes[i]
		}
	}
	return d.sizes[len(d.sizes)-1]
}

// Mean returns the distribution's expected size in bytes.
func (d *SizeDist) Mean() float64 {
	var sum, wsum float64
	for i := range d.sizes {
		sum += float64(d.sizes[i]) * d.weights[i]
		wsum += d.weights[i]
	}
	return sum / wsum
}

// Sizes exposes the support of the distribution.
func (d *SizeDist) Sizes() []int { return d.sizes }
