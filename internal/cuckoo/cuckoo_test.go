package cuckoo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	tbl := New(100)
	for i := uint64(0); i < 100; i++ {
		if !tbl.Insert(i, uint32(i*3)) {
			t.Fatalf("insert %d stalled below capacity", i)
		}
	}
	if tbl.Len() != 100 {
		t.Fatalf("len = %d", tbl.Len())
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := tbl.Lookup(i)
		if !ok || v != uint32(i*3) {
			t.Fatalf("lookup %d = %d,%v", i, v, ok)
		}
	}
	if _, ok := tbl.Lookup(1000); ok {
		t.Fatal("phantom key")
	}
}

func TestInsertUpdatesValue(t *testing.T) {
	tbl := New(10)
	tbl.Insert(5, 1)
	tbl.Insert(5, 2)
	if v, _ := tbl.Lookup(5); v != 2 {
		t.Fatalf("update failed: %d", v)
	}
	if tbl.Len() != 1 {
		t.Fatalf("duplicate insert changed count: %d", tbl.Len())
	}
}

func TestDelete(t *testing.T) {
	tbl := New(50)
	for i := uint64(0); i < 50; i++ {
		tbl.Insert(i, uint32(i))
	}
	for i := uint64(0); i < 50; i += 2 {
		if !tbl.Delete(i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tbl.Delete(0) {
		t.Fatal("double delete succeeded")
	}
	for i := uint64(0); i < 50; i++ {
		_, ok := tbl.Lookup(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d present=%v want %v", i, ok, want)
		}
	}
	if tbl.Len() != 25 {
		t.Fatalf("len = %d", tbl.Len())
	}
}

// TestFullCapacity verifies the paper's claim: with the table provisioned
// at twice the load (load factor 1/2) insertion always converges.
func TestFullCapacity(t *testing.T) {
	for _, capacity := range []int{16, 64, 1133, 4096} {
		tbl := New(capacity)
		r := rand.New(rand.NewSource(1))
		keys := make(map[uint64]uint32, capacity)
		for len(keys) < capacity {
			k := r.Uint64()
			if _, dup := keys[k]; dup {
				continue
			}
			v := uint32(len(keys))
			if !tbl.Insert(k, v) {
				t.Fatalf("capacity %d: stalled at %d entries", capacity, len(keys))
			}
			keys[k] = v
		}
		for k, v := range keys {
			got, ok := tbl.Lookup(k)
			if !ok || got != v {
				t.Fatalf("capacity %d: lost key %#x", capacity, k)
			}
		}
	}
}

// TestChurn mimics the descriptor pool's real access pattern: a sliding
// window of live keys with constant insert/delete churn at full capacity.
func TestChurn(t *testing.T) {
	const capacity = 1024
	tbl := New(capacity)
	next := uint64(1)
	var live []uint64
	for ; next <= capacity; next++ {
		if !tbl.Insert(next, uint32(next)) {
			t.Fatalf("fill stalled at %d", next)
		}
		live = append(live, next)
	}
	r := rand.New(rand.NewSource(42))
	for round := 0; round < 20000; round++ {
		// Delete a random live key, insert a fresh one.
		i := r.Intn(len(live))
		if !tbl.Delete(live[i]) {
			t.Fatalf("churn: delete %d failed", live[i])
		}
		live[i] = next
		if !tbl.Insert(next, uint32(next)) {
			t.Fatalf("churn: insert %d stalled (stash=%d)", next, tbl.StashLen())
		}
		next++
	}
	if tbl.Len() != capacity {
		t.Fatalf("len = %d, want %d", tbl.Len(), capacity)
	}
	for _, k := range live {
		if v, ok := tbl.Lookup(k); !ok || v != uint32(k) {
			t.Fatalf("churn lost key %d", k)
		}
	}
	t.Logf("max stash depth over churn: %d", tbl.MaxStashDepth)
	if tbl.MaxStashDepth > StashSize {
		t.Fatalf("stash exceeded bound: %d", tbl.MaxStashDepth)
	}
}

// TestNoLostEntriesProperty: random interleavings of insert/delete always
// agree with a reference map.
func TestNoLostEntriesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := New(256)
		ref := make(map[uint64]uint32)
		for op := 0; op < 1500; op++ {
			k := uint64(r.Intn(512)) // small key space forces collisions
			switch {
			case r.Intn(3) != 0 && len(ref) < 256:
				v := r.Uint32()
				if !tbl.Insert(k, v) {
					return false
				}
				ref[k] = v
			default:
				_, inRef := ref[k]
				if tbl.Delete(k) != inRef {
					return false
				}
				delete(ref, k)
			}
		}
		if tbl.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tbl.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOverCapacityStallsThenRecovers(t *testing.T) {
	tbl := New(32)
	// Push far past guaranteed capacity until a stall occurs.
	var inserted []uint64
	stalledAt := uint64(0)
	for k := uint64(0); k < 10000; k++ {
		if !tbl.Insert(k, uint32(k)) {
			stalledAt = k
			break
		}
		inserted = append(inserted, k)
	}
	if stalledAt == 0 {
		t.Skip("table absorbed 10000 entries; cannot exercise stall path")
	}
	// All previously inserted keys must still be intact.
	for _, k := range inserted {
		if v, ok := tbl.Lookup(k); !ok || v != uint32(k) {
			t.Fatalf("stall corrupted key %d", k)
		}
	}
	// Releasing entries lets the insert proceed, as in hardware.
	for i := 0; i < 8; i++ {
		tbl.Delete(inserted[i])
	}
	if !tbl.Insert(stalledAt, uint32(stalledAt)) {
		t.Fatal("insert still stalled after releases")
	}
}

func TestSlotsAccounting(t *testing.T) {
	tbl := New(1133) // the paper's N_txdesc
	if tbl.Capacity() < 1133 {
		t.Fatalf("capacity %d < 1133", tbl.Capacity())
	}
	// 2x provisioning: between 2x and 4x (power-of-two rounding) + stash.
	if tbl.Slots() < 2*1133 || tbl.Slots() > 4*1133+StashSize {
		t.Fatalf("slots = %d", tbl.Slots())
	}
}

func BenchmarkLookup(b *testing.B) {
	tbl := New(4096)
	for i := uint64(0); i < 4096; i++ {
		tbl.Insert(i, uint32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(uint64(i) & 4095)
	}
}

func BenchmarkInsertDeleteChurn(b *testing.B) {
	tbl := New(4096)
	for i := uint64(0); i < 4096; i++ {
		tbl.Insert(i, uint32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i)
		tbl.Delete(k & 4095)
		tbl.Insert(k&4095+4096, uint32(k))
		tbl.Delete(k&4095 + 4096)
		tbl.Insert(k&4095, uint32(k))
	}
}
