// Package cuckoo implements the 4-bank cuckoo hash table with a 4-entry
// stash that FlexDriver's address-translation layer uses to map virtual
// (queue, index) descriptor addresses onto a small shared physical pool
// (paper §5.2, "Address Translation").
//
// The construction follows the paper exactly: four direct-mapped banks so a
// lookup probes all banks (and the stash) in parallel in constant time; an
// insertion that collides evicts an old entry to the stash; the stash then
// re-inserts evicted entries into alternate banks until it drains. The
// table is provisioned at twice the required capacity (load factor 1/2) so
// insertion converges without backpressure in practice; if the stash ever
// fills, Insert reports a stall exactly like the hardware would.
package cuckoo

import "math/bits"

const (
	// Banks is the number of independent hash banks.
	Banks = 4
	// StashSize is the number of overflow entries the stash holds.
	StashSize = 4
)

type entry struct {
	key  uint64
	val  uint32
	used bool
	// from records the bank the entry was last evicted from, so the
	// stash prefers a different bank on re-insertion.
	from int
}

// Table is a fixed-size 4-bank cuckoo hash table mapping uint64 keys to
// uint32 values. Create with New.
type Table struct {
	banks    [Banks][]entry
	stash    []entry
	bankSize int
	count    int
	seeds    [Banks]uint64
	victim   int // rotating eviction pointer, for determinism
	// MaxStashDepth tracks the high-water mark of stash occupancy, an
	// observability hook the hardware exposes as a performance counter.
	MaxStashDepth int
}

// New returns a table guaranteed to hold capacity entries. Per the paper
// the physical table is sized at twice the capacity (load factor 1/2),
// rounded up so each bank is a power of two.
func New(capacity int) *Table {
	if capacity < 1 {
		capacity = 1
	}
	perBank := (2*capacity + Banks - 1) / Banks
	// Round up to a power of two for cheap masking, like the RTL.
	perBank = 1 << bits.Len(uint(perBank-1))
	t := &Table{bankSize: perBank}
	for i := range t.banks {
		t.banks[i] = make([]entry, perBank)
	}
	// Distinct odd multipliers per bank (splitmix-style constants).
	t.seeds = [Banks]uint64{
		0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb, 0xd6e8feb86659fd93,
	}
	return t
}

// Capacity returns the number of entries the table guarantees to hold
// (half the physical slots).
func (t *Table) Capacity() int { return t.bankSize * Banks / 2 }

// Len returns the number of stored entries, including stashed ones.
func (t *Table) Len() int { return t.count }

// Slots returns the number of physical slots (for memory accounting).
func (t *Table) Slots() int { return t.bankSize*Banks + StashSize }

func (t *Table) bucket(bank int, key uint64) int {
	h := key * t.seeds[bank]
	h ^= h >> 29
	h *= 0xff51afd7ed558ccd
	h ^= h >> 32
	return int(h) & (t.bankSize - 1)
}

// Lookup returns the value stored for key. It probes the four banks and
// the stash — constant time, as in hardware where all probes happen in the
// same cycle.
func (t *Table) Lookup(key uint64) (uint32, bool) {
	for b := 0; b < Banks; b++ {
		e := &t.banks[b][t.bucket(b, key)]
		if e.used && e.key == key {
			return e.val, true
		}
	}
	for i := range t.stash {
		if t.stash[i].key == key {
			return t.stash[i].val, true
		}
	}
	return 0, false
}

// Insert stores key→val. It returns false when the insertion would stall
// (stash full and no slot freed), which with the paper's 2x provisioning
// indicates the caller exceeded the table's guaranteed capacity. Inserting
// an existing key updates its value.
func (t *Table) Insert(key uint64, val uint32) bool {
	// Update in place if present.
	for b := 0; b < Banks; b++ {
		e := &t.banks[b][t.bucket(b, key)]
		if e.used && e.key == key {
			e.val = val
			return true
		}
	}
	for i := range t.stash {
		if t.stash[i].key == key {
			t.stash[i].val = val
			return true
		}
	}

	if !t.place(entry{key: key, val: val, from: -1}) {
		return false
	}
	t.count++
	t.drainStash()
	return true
}

// place puts e into an empty slot, or evicts a victim to the stash to make
// room. It fails only when every bank slot is taken and the stash is full.
func (t *Table) place(e entry) bool {
	for b := 0; b < Banks; b++ {
		if b == e.from {
			continue // prefer a different bank than the one we came from
		}
		slot := &t.banks[b][t.bucket(b, e.key)]
		if !slot.used {
			*slot = entry{key: e.key, val: e.val, used: true}
			return true
		}
	}
	if e.from >= 0 {
		// Allow returning to the origin bank as a last resort.
		slot := &t.banks[e.from][t.bucket(e.from, e.key)]
		if !slot.used {
			*slot = entry{key: e.key, val: e.val, used: true}
			return true
		}
	}
	if len(t.stash) >= StashSize {
		return false
	}
	// Evict the occupant of a rotating bank into the stash.
	b := t.victim % Banks
	t.victim++
	slot := &t.banks[b][t.bucket(b, e.key)]
	victim := *slot
	victim.from = b
	*slot = entry{key: e.key, val: e.val, used: true}
	t.stash = append(t.stash, victim)
	if len(t.stash) > t.MaxStashDepth {
		t.MaxStashDepth = len(t.stash)
	}
	return true
}

// drainStash retries stashed entries until the stash empties or no
// progress is possible this round (hardware runs this continuously in the
// background; bounding work per operation keeps the model deterministic).
func (t *Table) drainStash() {
	for iter := 0; iter < 64 && len(t.stash) > 0; iter++ {
		e := t.stash[0]
		t.stash = t.stash[1:]
		if !t.place(e) {
			// Stash was full again; put it back and stop.
			t.stash = append(t.stash, e)
			return
		}
	}
}

// Delete removes key, returning whether it was present. Freeing a slot
// lets the stash drain, mirroring the hardware's "stall until some entry
// is released" recovery.
func (t *Table) Delete(key uint64) bool {
	for b := 0; b < Banks; b++ {
		e := &t.banks[b][t.bucket(b, key)]
		if e.used && e.key == key {
			*e = entry{}
			t.count--
			t.drainStash()
			return true
		}
	}
	for i := range t.stash {
		if t.stash[i].key == key {
			t.stash = append(t.stash[:i], t.stash[i+1:]...)
			t.count--
			return true
		}
	}
	return false
}

// StashLen returns the current stash occupancy.
func (t *Table) StashLen() int { return len(t.stash) }
