package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Median() != 0 || s.Percentile(99) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestMeanMedian(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	approx(t, s.Mean(), 3, 1e-12, "mean")
	approx(t, s.Median(), 3, 1e-12, "median")
	approx(t, s.Min(), 1, 0, "min")
	approx(t, s.Max(), 5, 0, "max")
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	for i := 1; i <= 4; i++ {
		s.Add(float64(i)) // 1,2,3,4
	}
	approx(t, s.Percentile(0), 1, 0, "p0")
	approx(t, s.Percentile(100), 4, 0, "p100")
	approx(t, s.Percentile(50), 2.5, 1e-12, "p50")
	approx(t, s.Percentile(25), 1.75, 1e-12, "p25")
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s Sample
		n := 1 + r.Intn(100)
		for i := 0; i < n; i++ {
			s.Add(r.NormFloat64() * 100)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddAfterPercentile(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Median()
	s.Add(0)
	approx(t, s.Median(), 5, 1e-12, "median after re-add")
}

// TestOrderStatisticsPreserveInsertionOrder is the regression test for
// a bug where Min/Max/Percentile sorted the backing slice in place:
// callers that walked the series in arrival order (e.g. matching RTT
// samples to send timestamps) silently got sorted data after the first
// percentile query.
func TestOrderStatisticsPreserveInsertionOrder(t *testing.T) {
	in := []float64{5, 1, 4, 2, 3}
	var s Sample
	for _, v := range in {
		s.Add(v)
	}
	_ = s.Min()
	_ = s.Max()
	_ = s.Percentile(90)
	_ = s.Median()
	got := s.Values()
	if len(got) != len(in) {
		t.Fatalf("Values() length = %d, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("insertion order lost: Values() = %v, want %v", got, in)
		}
	}
	// The order statistics themselves must still be right.
	approx(t, s.Min(), 1, 0, "min")
	approx(t, s.Max(), 5, 0, "max")
	approx(t, s.Median(), 3, 1e-12, "median")
}

func TestStddev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	approx(t, s.Stddev(), 2, 1e-12, "stddev")
}

func TestSummarize(t *testing.T) {
	var s Sample
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	sum := s.Summarize()
	if sum.N != 1000 {
		t.Fatalf("N = %d", sum.N)
	}
	approx(t, sum.Mean, 500.5, 1e-9, "mean")
	approx(t, sum.P99, 990.01, 0.2, "p99")
	approx(t, sum.P999, 999.002, 0.2, "p99.9")
	if sum.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestRatio(t *testing.T) {
	approx(t, Ratio(10, 5), 2, 0, "ratio")
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Fatal("ratio x/0 should be +Inf")
	}
	approx(t, Ratio(0, 0), 1, 0, "0/0")
}

func TestWithin(t *testing.T) {
	if !Within(95, 100, 0.10) {
		t.Fatal("95 should be within 10% of 100")
	}
	if Within(80, 100, 0.10) {
		t.Fatal("80 should not be within 10% of 100")
	}
	if !Within(0.05, 0, 0.10) {
		t.Fatal("near-zero should be within abs tolerance of 0")
	}
}
