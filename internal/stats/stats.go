// Package stats provides small statistics helpers (mean, percentiles,
// histograms) for latency and throughput series produced by the simulated
// experiments.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations in insertion order. Order
// statistics (Min, Max, Percentile) work on a lazily maintained sorted
// copy, so querying them never reorders the observations themselves —
// callers may interleave percentile reads with order-sensitive walks of
// the series.
type Sample struct {
	vals   []float64
	sorted []float64 // lazy sorted copy; nil when stale
}

// NewSample returns a sample preallocated for about sizeHint
// observations, avoiding the append growth path (and its copies) that
// shows up in cluster-scale profiles. A non-positive hint is the same as
// a zero Sample.
func NewSample(sizeHint int) *Sample {
	s := &Sample{}
	if sizeHint > 0 {
		s.vals = make([]float64, 0, sizeHint)
	}
	return s
}

// Add appends an observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = nil
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Values returns the observations in insertion order. The slice is the
// sample's backing store; callers must not modify it.
func (s *Sample) Values() []float64 { return s.vals }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.ensureSorted()[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	v := s.ensureSorted()
	return v[len(v)-1]
}

func (s *Sample) ensureSorted() []float64 {
	if s.sorted == nil {
		s.sorted = append(make([]float64, 0, len(s.vals)), s.vals...)
		sort.Float64s(s.sorted)
	}
	return s.sorted
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks, or 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	v := s.ensureSorted()
	if p <= 0 {
		return v[0]
	}
	if p >= 100 {
		return v[len(v)-1]
	}
	rank := p / 100 * float64(len(v)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return v[lo]
	}
	frac := rank - float64(lo)
	return v[lo]*(1-frac) + v[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Summary holds the latency summary shape used by the paper's Table 6.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	P99    float64
	P999   float64
}

// Summarize computes a Summary of the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		Median: s.Median(),
		P99:    s.Percentile(99),
		P999:   s.Percentile(99.9),
	}
}

// String formats a Summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f median=%.2f p99=%.2f p99.9=%.2f",
		s.N, s.Mean, s.Median, s.P99, s.P999)
}

// Ratio returns a/b, or +Inf when b is zero and a nonzero, or 1 when both
// are zero. Used when comparing measured to paper-reported values.
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}

// Within reports whether got is within frac (e.g. 0.1 for ±10%) of want.
func Within(got, want, frac float64) bool {
	if want == 0 {
		return math.Abs(got) <= frac
	}
	return math.Abs(got-want) <= frac*math.Abs(want)
}
