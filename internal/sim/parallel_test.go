package sim

import (
	"fmt"
	"testing"
)

// ringWorld is a synthetic sharded model used by the scheduler tests:
// nShards engines in a ring, each forwarding jittered messages to its
// neighbor through a conduit. Every delivery appends an order-sensitive
// record to the shard's trace, so any difference in cross-shard merge
// order — or in which round an event ran — changes the combined trace.
type ringWorld struct {
	g      *Group
	eng    []*Engine
	out    []*Conduit
	rng    []*Rand
	st     []*ringShard
	trace  [][]string
	frames [][]byte
	nsent  []int
	maxMsg int
	quiet  bool // skip trace recording (the alloc test's mode)
}

type ringShard struct {
	w     *ringWorld
	shard int
}

func ringSendTramp(a any) {
	s := a.(*ringShard)
	s.w.send(s.shard)
}

func newRingWorld(nShards, seed int, lookahead Duration, maxMsg int) *ringWorld {
	w := &ringWorld{
		g:      NewGroup(),
		trace:  make([][]string, nShards),
		nsent:  make([]int, nShards),
		maxMsg: maxMsg,
	}
	w.g.SetLookahead(lookahead)
	for i := 0; i < nShards; i++ {
		w.eng = append(w.eng, w.g.NewEngine())
		w.rng = append(w.rng, NewRand(int64(seed)*1000+int64(i)))
		w.st = append(w.st, &ringShard{w: w, shard: i})
		w.frames = append(w.frames, []byte{byte(i), 0})
	}
	for i := 0; i < nShards; i++ {
		src, dst := w.eng[i], w.eng[(i+1)%nShards]
		shard := (i + 1) % nShards
		c := NewConduit(src, dst, func(frame []byte) { w.recv(shard, frame) })
		w.out = append(w.out, c)
	}
	return w
}

func (w *ringWorld) send(shard int) {
	if w.nsent[shard] >= w.maxMsg {
		return
	}
	w.nsent[shard]++
	e := w.eng[shard]
	// Arrival = now + lookahead + jitter, the conservative contract.
	at := e.Now() + w.g.Lookahead() + w.rng[shard].Exp(200*Nanosecond)
	f := w.frames[shard]
	if !w.quiet {
		f = []byte{byte(shard), byte(w.nsent[shard])}
	}
	w.out[shard].Send(at, f)
}

func (w *ringWorld) recv(shard int, frame []byte) {
	e := w.eng[shard]
	if !w.quiet {
		w.trace[shard] = append(w.trace[shard],
			fmt.Sprintf("%d@%d:%d.%d", shard, e.Now(), frame[0], frame[1]))
	}
	// A little local work at the same instant, then forward.
	e.AfterArg(w.rng[shard].Exp(50*Nanosecond), ringSendTramp, w.st[shard])
}

func (w *ringWorld) hash() string {
	s := ""
	for _, tr := range w.trace {
		for _, line := range tr {
			s += line + ";"
		}
		s += "|"
	}
	return s
}

func runRing(nShards, seed, workers int, lookahead Duration, maxMsg int) string {
	w := newRingWorld(nShards, seed, lookahead, maxMsg)
	w.g.SetWorkers(workers)
	for i := range w.eng {
		w.send(i)
		w.send(i)
	}
	w.g.Run()
	if p := w.g.Pending(); p != 0 {
		panic(fmt.Sprintf("ring world did not quiesce: %d pending", p))
	}
	return w.hash()
}

func TestGroupSequentialParallelIdentical(t *testing.T) {
	for _, seed := range []int{1, 7, 42} {
		ref := runRing(8, seed, 1, 500*Nanosecond, 200)
		for _, workers := range []int{2, 4, 8} {
			got := runRing(8, seed, workers, 500*Nanosecond, 200)
			if got != ref {
				t.Fatalf("seed %d: workers=%d trace differs from sequential", seed, workers)
			}
		}
	}
}

func TestGroupZeroLookahead(t *testing.T) {
	// Degenerate topology: no latency slack at all. The scheduler must
	// fall back to lockstep single-instant rounds and still match the
	// sequential reference exactly.
	ref := runRing(4, 3, 1, 0, 50)
	got := runRing(4, 3, 8, 0, 50)
	if got != ref {
		t.Fatalf("zero-lookahead parallel trace differs from sequential")
	}
	if ref == "" {
		t.Fatalf("zero-lookahead world produced no trace")
	}
}

func TestGroupRunUntil(t *testing.T) {
	g := NewGroup()
	a, b := g.NewEngine(), g.NewEngine()
	g.SetLookahead(100 * Nanosecond)
	var fired []string
	a.At(1*Microsecond, func() { fired = append(fired, "a1") })
	a.At(2*Microsecond, func() { fired = append(fired, "a2") })
	b.At(1500*Nanosecond, func() { fired = append(fired, "b") })
	g.RunUntil(1500 * Nanosecond) // inclusive boundary
	if want := "a1,b"; fmt.Sprint(fired) != fmt.Sprint([]string{"a1", "b"}) {
		t.Fatalf("RunUntil fired %v, want %s", fired, want)
	}
	if a.Now() != 1500*Nanosecond || b.Now() != 1500*Nanosecond || g.Now() != 1500*Nanosecond {
		t.Fatalf("clocks not advanced to deadline: a=%v b=%v g=%v", a.Now(), b.Now(), g.Now())
	}
	g.Run()
	if len(fired) != 3 {
		t.Fatalf("Run after RunUntil fired %v", fired)
	}
}

func TestGroupControls(t *testing.T) {
	g := NewGroup()
	a, b := g.NewEngine(), g.NewEngine()
	g.SetLookahead(100 * Nanosecond)
	var order []string
	a.At(900*Nanosecond, func() { order = append(order, "ev-a") })
	b.At(1100*Nanosecond, func() { order = append(order, "ev-b") })
	g.Control(1*Microsecond, func() {
		// Both shards must be quiesced through 1us and advanced to it.
		if a.Now() != 1*Microsecond || b.Now() != 1*Microsecond {
			t.Errorf("control saw clocks a=%v b=%v", a.Now(), b.Now())
		}
		order = append(order, "ctl-1")
		// Re-arming from within a control is the watchdog pattern.
		g.Control(2*Microsecond, func() { order = append(order, "ctl-2") })
	})
	g.Run()
	want := []string{"ev-a", "ctl-1", "ev-b", "ctl-2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

func TestGroupControlSameInstantFIFO(t *testing.T) {
	g := NewGroup()
	g.NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		g.Control(1*Microsecond, func() { order = append(order, i) })
	}
	g.Run()
	if fmt.Sprint(order) != fmt.Sprint([]int{0, 1, 2, 3, 4}) {
		t.Fatalf("same-instant controls ran out of order: %v", order)
	}
}

func TestConduitSameEngineDegenerate(t *testing.T) {
	e := NewEngine()
	var got []byte
	c := NewConduit(e, e, func(frame []byte) { got = frame })
	c.Send(1*Microsecond, []byte{42})
	e.Run()
	if len(got) != 1 || got[0] != 42 || e.Now() != 1*Microsecond {
		t.Fatalf("same-engine conduit: got=%v now=%v", got, e.Now())
	}
}

func TestGroupSteadyStateAllocs(t *testing.T) {
	// After warm-up, sequential rounds must not allocate: conduit
	// delivery nodes, merge refs, and the active-shard scratch all come
	// from reused storage. (Parallel rounds allocate one small round
	// descriptor each — bounded and tiny — so the zero-alloc pin is on
	// the sequential path.)
	w := newRingWorld(4, 9, 500*Nanosecond, 1<<30)
	w.quiet = true
	for i := range w.eng {
		w.send(i)
	}
	w.g.RunUntil(100 * Microsecond) // warm freelists and scratch
	avg := testing.AllocsPerRun(10, func() {
		w.g.RunUntil(w.g.Now() + 200*Microsecond)
	})
	if avg > 0.5 {
		t.Fatalf("steady-state sequential run allocates %.1f/op", avg)
	}
}

// TestGroupIdleShardSkip pins the idle-shard skip: a quiescent shard —
// racked, cabled, but with no events — must schedule zero barrier work
// while its neighbors run thousands of rounds. ShardRounds is the
// direct observable: it counts only rounds a shard was active in.
func TestGroupIdleShardSkip(t *testing.T) {
	g := NewGroup()
	g.SetLookahead(500 * Nanosecond)
	a, b := g.NewEngine(), g.NewEngine()
	idle := g.NewEngine() // racked like any node, never scheduled
	var ab, ba *Conduit
	var n int
	ab = NewConduit(a, b, func([]byte) {
		if n++; n < 2000 {
			ba.Send(b.Now()+500*Nanosecond, []byte{1})
		}
	})
	ba = NewConduit(b, a, func([]byte) {
		ab.Send(a.Now()+500*Nanosecond, []byte{0})
	})
	_ = NewConduit(a, idle, func([]byte) {}) // a cabled path that stays dark
	ab.Send(500*Nanosecond, []byte{0})
	g.Run()
	st := g.Stats()
	if st.Rounds < 100 {
		t.Fatalf("exchange ran only %d rounds; the test lost its workload", st.Rounds)
	}
	if st.ShardRounds[0] == 0 || st.ShardRounds[1] == 0 {
		t.Fatalf("active shards show no rounds: %v", st.ShardRounds)
	}
	if st.ShardRounds[2] != 0 {
		t.Fatalf("quiescent shard was scheduled %d times; the idle-shard skip is broken",
			st.ShardRounds[2])
	}
	if st.Merged == 0 {
		t.Fatalf("no cross-shard messages merged; the workload is wrong")
	}
}

// TestGroupBarrierMergeAllocs pins the barrier merge at high fan-in to
// zero steady-state allocations: 16 shards all forwarding every round,
// so every barrier gathers and k-way-merges 16 dirty conduits. Before
// the per-conduit batched merge this path re-grew scratch slices every
// round.
func TestGroupBarrierMergeAllocs(t *testing.T) {
	w := newRingWorld(16, 13, 500*Nanosecond, 1<<30)
	w.quiet = true
	for i := range w.eng {
		w.send(i)
		w.send(i)
	}
	// Warm until every freelist, per-conduit run, merge-heap and event-
	// heap array has reached its high-water capacity (the first few
	// hundred microseconds still grow them).
	w.g.RunUntil(2 * Millisecond)
	avg := testing.AllocsPerRun(10, func() {
		w.g.RunUntil(w.g.Now() + 200*Microsecond)
	})
	if avg > 0.5 {
		t.Fatalf("high fan-in barrier merge allocates %.1f/op at steady state", avg)
	}
}

// TestGroupRaceStress exists to give `go test -race` a workout over the
// barrier, worker-claim, and merge paths: many shards, all-to-all-ish
// traffic, thousands of rounds. Correctness is checked against the
// sequential reference.
func TestGroupRaceStress(t *testing.T) {
	for seed := 0; seed < 4; seed++ {
		ref := runRing(16, 100+seed, 1, 200*Nanosecond, 300)
		got := runRing(16, 100+seed, 8, 200*Nanosecond, 300)
		if got != ref {
			t.Fatalf("seed %d: parallel stress trace differs", seed)
		}
	}
}
