package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*Nanosecond, func() { got = append(got, 3) })
	e.At(10*Nanosecond, func() { got = append(got, 1) })
	e.At(20*Nanosecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("clock = %v, want 30ns", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Nanosecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(Nanosecond, func() {
		fired = append(fired, e.Now())
		e.After(2*Nanosecond, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != Nanosecond || fired[1] != 3*Nanosecond {
		t.Fatalf("nested schedule wrong: %v", fired)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*Nanosecond, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Microsecond, func() { count++ })
	}
	e.RunUntil(5 * Microsecond)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 5*Microsecond {
		t.Fatalf("now = %v, want 5us", e.Now())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("count after drain = %d, want 10", count)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Microsecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestBitRateSerialize(t *testing.T) {
	// 64 B at 100 Gbps = 5.12 ns = 5120 ps.
	got := (100 * Gbps).Serialize(64)
	if got != 5120*Picosecond {
		t.Fatalf("serialize = %v ps, want 5120", int64(got))
	}
	// 1500 B at 25 Gbps = 480 ns.
	got = (25 * Gbps).Serialize(1500)
	if got != 480*Nanosecond {
		t.Fatalf("serialize = %v, want 480ns", got)
	}
	if (BitRate(0)).Serialize(100) != 0 {
		t.Fatal("zero rate should serialize in zero time")
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	var done []Time
	// Three items of 10ns each submitted at t=0 finish at 10, 20, 30 ns.
	for i := 0; i < 3; i++ {
		r.Acquire(10*Nanosecond, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []Time{10 * Nanosecond, 20 * Nanosecond, 30 * Nanosecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion %d at %v, want %v", i, done[i], want[i])
		}
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	var second Time
	r.Acquire(10*Nanosecond, nil)
	e.At(50*Nanosecond, func() {
		r.Acquire(5*Nanosecond, func() { second = e.Now() })
	})
	e.Run()
	if second != 55*Nanosecond {
		t.Fatalf("second completion at %v, want 55ns", second)
	}
}

func TestResourceAcquireAt(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	var done Time
	r.AcquireAt(100*Nanosecond, 10*Nanosecond, func() { done = e.Now() })
	e.Run()
	if done != 110*Nanosecond {
		t.Fatalf("done at %v, want 110ns", done)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	r.Acquire(30*Nanosecond, nil)
	e.At(100*Nanosecond, func() {})
	e.Run()
	if u := r.Utilization(); math.Abs(u-0.3) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.3", u)
	}
}

func TestTokenBucket(t *testing.T) {
	e := NewEngine()
	tb := NewTokenBucket(e, 8*Gbps, 1000) // 1 GB/s refill, 1000 B burst
	if !tb.Admit(1000) {
		t.Fatal("full bucket should admit burst")
	}
	if tb.Admit(1) {
		t.Fatal("empty bucket should reject")
	}
	// After 500 ns at 1 GB/s, 500 bytes are available.
	e.At(500*Nanosecond, func() {
		if !tb.Admit(500) {
			t.Error("bucket should have refilled 500 B")
		}
		if tb.Admit(1) {
			t.Error("bucket should be empty again")
		}
	})
	e.Run()
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	e := NewEngine()
	tb := NewTokenBucket(e, 8*Gbps, 100)
	e.At(Millisecond, func() {
		if tb.Admit(101) {
			t.Error("bucket must not exceed burst depth")
		}
		if !tb.Admit(100) {
			t.Error("bucket should hold exactly burst depth")
		}
	})
	e.Run()
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(42)
	const n = 200000
	mean := 10 * Microsecond
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Exp(mean))
	}
	got := sum / n
	if math.Abs(got-float64(mean)) > 0.02*float64(mean) {
		t.Fatalf("exp mean = %v, want ~%v", Time(got), mean)
	}
}

func TestRandParetoBounds(t *testing.T) {
	r := NewRand(7)
	check := func(seed int64) bool {
		rr := NewRand(seed)
		v := rr.Pareto(Microsecond, 100*Microsecond, 1.5)
		return v >= Microsecond && v <= 100*Microsecond
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{5 * Nanosecond, "5.000ns"},
		{2500 * Nanosecond, "2.500us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestFromSeconds(t *testing.T) {
	if FromSeconds(1e-6) != Microsecond {
		t.Fatalf("FromSeconds(1e-6) = %v", FromSeconds(1e-6))
	}
}

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(Nanosecond, tick)
		}
	}
	e.After(0, tick)
	e.Run()
}

func BenchmarkResourceAcquire(b *testing.B) {
	e := NewEngine()
	r := NewResource(e)
	for i := 0; i < b.N; i++ {
		r.Acquire(Nanosecond, nil)
	}
	e.Run()
}
