package sim

// BitRate is a transfer rate in bits per second.
type BitRate float64

// Common rates.
const (
	Kbps BitRate = 1e3
	Mbps BitRate = 1e6
	Gbps BitRate = 1e9
)

// Serialize returns the virtual time needed to put n bytes on a medium with
// rate r.
func (r BitRate) Serialize(n int) Duration {
	if r <= 0 {
		return 0
	}
	return Time(float64(n)*8/float64(r)*float64(Second) + 0.5)
}

// Gigabits returns the rate in Gbit/s.
func (r BitRate) Gigabits() float64 { return float64(r) / 1e9 }

// Resource models a single FIFO server (a link direction, a CPU core, an
// accelerator lane): work items occupy it back to back, each for its own
// service time. Acquire never blocks the caller — it schedules the
// completion callback at the time the item finishes service.
type Resource struct {
	eng       *Engine
	busyUntil Time

	// Busy accumulates total service time, for utilization accounting.
	Busy Duration
}

// NewResource returns an idle resource bound to eng.
func NewResource(eng *Engine) *Resource { return &Resource{eng: eng} }

// Acquire enqueues a work item with the given service time and schedules
// done (which may be nil) at its completion. It returns the completion time.
func (r *Resource) Acquire(service Duration, done func()) Time {
	start := r.eng.Now()
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end := start + service
	r.busyUntil = end
	r.Busy += service
	if done != nil {
		r.eng.At(end, done)
	}
	return end
}

// AcquireArg is Acquire's allocation-free form: done(arg) is scheduled at
// completion through Engine.AtArg, so per-packet steady-state callers can
// pass a preallocated state object instead of building a closure.
func (r *Resource) AcquireArg(service Duration, done func(any), arg any) Time {
	start := r.eng.Now()
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end := start + service
	r.busyUntil = end
	r.Busy += service
	if done != nil {
		r.eng.AtArg(end, done, arg)
	}
	return end
}

// AcquireAt is like Acquire but the item only becomes eligible for service
// at the given release time (which may be in the future).
func (r *Resource) AcquireAt(release Time, service Duration, done func()) Time {
	start := release
	if now := r.eng.Now(); start < now {
		start = now
	}
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end := start + service
	r.busyUntil = end
	r.Busy += service
	if done != nil {
		r.eng.At(end, done)
	}
	return end
}

// BusyUntil reports the time at which the resource drains given no further
// arrivals.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// Utilization returns the fraction of [0, now] the resource spent busy.
func (r *Resource) Utilization() float64 {
	now := r.eng.Now()
	if now == 0 {
		return 0
	}
	busy := r.Busy
	if r.busyUntil > now {
		busy -= r.busyUntil - now // in-flight service beyond now
	}
	return float64(busy) / float64(now)
}

// TokenBucket is a classic token-bucket rate limiter used to model NIC
// traffic shapers (paper §5.4, §8.2.3). Tokens are bytes.
type TokenBucket struct {
	eng    *Engine
	rate   BitRate // refill rate
	burst  float64 // bucket depth in bytes
	tokens float64
	last   Time
}

// NewTokenBucket returns a full bucket with the given rate and burst (bytes).
func NewTokenBucket(eng *Engine, rate BitRate, burst int) *TokenBucket {
	return &TokenBucket{eng: eng, rate: rate, burst: float64(burst), tokens: float64(burst)}
}

func (tb *TokenBucket) refill() {
	now := tb.eng.Now()
	if now > tb.last {
		tb.tokens += float64(tb.rate) / 8 * (now - tb.last).Seconds()
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
}

// Admit consumes n bytes of tokens if available and reports whether the
// packet conforms. Non-conforming packets are expected to be dropped or
// queued by the caller.
func (tb *TokenBucket) Admit(n int) bool {
	tb.refill()
	if tb.tokens >= float64(n) {
		tb.tokens -= float64(n)
		return true
	}
	return false
}

// Reserve unconditionally charges n bytes, allowing the balance to go
// negative, and returns how long the caller must wait before the bucket is
// non-negative again. This models a shaper that queues (rather than drops)
// non-conforming traffic, as NIC egress rate limiters do.
func (tb *TokenBucket) Reserve(n int) Duration {
	tb.refill()
	tb.tokens -= float64(n)
	if tb.tokens >= 0 {
		return 0
	}
	return Time(-tb.tokens * 8 / float64(tb.rate) * float64(Second))
}

// Rate returns the configured refill rate.
func (tb *TokenBucket) Rate() BitRate { return tb.rate }

// SetRate retunes the bucket live: the balance is settled at the old
// rate first, then refills continue at the new rate with the new depth.
// An over-full or over-drawn balance carries across the change, so a
// shaper mid-delay keeps its reservation honest.
func (tb *TokenBucket) SetRate(rate BitRate, burst int) {
	tb.refill()
	tb.rate = rate
	tb.burst = float64(burst)
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
}
