package sim

import (
	"math"
	"math/rand"
)

// Rand wraps math/rand with distributions the experiments need. All
// experiments construct it from a fixed seed so runs are reproducible.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{rand.New(rand.NewSource(seed))}
}

// Exp returns an exponentially distributed duration with the given mean,
// used for Poisson (open-loop) arrival processes.
func (r *Rand) Exp(mean Duration) Duration {
	d := Time(r.ExpFloat64() * float64(mean))
	if d < 0 {
		d = 0
	}
	return d
}

// Pareto returns a bounded Pareto sample in [min, max] with tail index
// alpha. Used to model OS-jitter tails on the CPU baseline.
func (r *Rand) Pareto(min, max Duration, alpha float64) Duration {
	// Inverse-CDF sampling of a bounded Pareto distribution.
	lo, hi := float64(min), float64(max)
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return Time(x)
}
