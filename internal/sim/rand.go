package sim

import (
	"math"
	"math/rand"
)

// Rand wraps math/rand with distributions the experiments need. All
// experiments construct it from a fixed seed so runs are reproducible.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{rand.New(rand.NewSource(seed))}
}

// splitmix is a SplitMix64 rand.Source64: 8 bytes of state against the
// default lagged-Fibonacci source's ~5 KiB. Population-scale workloads
// (10^5 per-connection streams in exps.KVServe) would pay ~500 MB for
// the default source; this one costs ~10 MB.
type splitmix struct{ s uint64 }

func (s *splitmix) Uint64() uint64 {
	s.s += 0x9e3779b97f4a7c15
	z := s.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

func (s *splitmix) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *splitmix) Seed(seed int64) { s.s = uint64(seed) }

// NewLightRand returns a deterministic generator with O(1)-byte state
// (SplitMix64). Streams differ from NewRand's for the same seed, so a
// workload must pick one constructor and keep it — the aggregated/
// discrete equivalence only holds when both sides use the same one.
func NewLightRand(seed int64) *Rand {
	return &Rand{rand.New(&splitmix{s: uint64(seed)})}
}

// Zipf returns a sampler over [0, imax] with Zipf parameter s > 1 and
// offset v >= 1 (math/rand's parameterization), driven by r's stream —
// the key-popularity skew of the KV-serving workloads.
func (r *Rand) Zipf(s, v float64, imax uint64) func() uint64 {
	z := rand.NewZipf(r.Rand, s, v, imax)
	return z.Uint64
}

// Exp returns an exponentially distributed duration with the given mean,
// used for Poisson (open-loop) arrival processes.
func (r *Rand) Exp(mean Duration) Duration {
	d := Time(r.ExpFloat64() * float64(mean))
	if d < 0 {
		d = 0
	}
	return d
}

// Pareto returns a bounded Pareto sample in [min, max] with tail index
// alpha. Used to model OS-jitter tails on the CPU baseline.
func (r *Rand) Pareto(min, max Duration, alpha float64) Duration {
	// Inverse-CDF sampling of a bounded Pareto distribution.
	lo, hi := float64(min), float64(max)
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return Time(x)
}
