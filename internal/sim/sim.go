// Package sim provides a deterministic, single-threaded discrete-event
// simulation engine used as the timing substrate for the FlexDriver
// reproduction.
//
// All model components (PCIe links, NIC pipelines, CPU cores, accelerator
// lanes) are plain Go objects that schedule callbacks on a shared Engine.
// The engine keeps a virtual clock with picosecond resolution; events fire
// strictly in (time, insertion-order) order, so runs are reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, measured in picoseconds.
//
// Picoseconds keep rounding error negligible when serializing small frames
// on fast links (a 64 B frame at 100 Gbps lasts 5.12 ns = 5120 ps) while an
// int64 still spans about 106 days of simulated time.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration = Time

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds returns t expressed in microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Nanoseconds returns t expressed in nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// FromSeconds converts seconds to virtual Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among same-time events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug, and silently reordering events would make
// results nondeterministic in confusing ways.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+d, fn) }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes. Subsequent Run calls clear the flag and continue.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
}

// RunUntil executes events with timestamps <= deadline (or until Stop),
// then advances the clock to the deadline.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > deadline {
			break
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}
