// Package sim provides a deterministic discrete-event simulation engine
// used as the timing substrate for the FlexDriver reproduction.
//
// All model components (PCIe links, NIC pipelines, CPU cores, accelerator
// lanes) are plain Go objects that schedule callbacks on an Engine. Each
// engine keeps a virtual clock with picosecond resolution; events fire
// strictly in (time, insertion-order) order, so runs are reproducible.
//
// A single Engine is single-threaded. For cluster-scale models, several
// engines — one per node — can be joined into a Group (see parallel.go),
// which runs them under a conservative parallel scheduler: shards execute
// concurrently inside lookahead windows and exchange cross-shard messages
// through Conduits merged in a fixed order at barriers, so results are
// byte-identical whether the group runs on one goroutine or many.
package sim

import "fmt"

// Time is a point in virtual time, measured in picoseconds.
//
// Picoseconds keep rounding error negligible when serializing small frames
// on fast links (a 64 B frame at 100 Gbps lasts 5.12 ns = 5120 ps) while an
// int64 still spans about 106 days of simulated time.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration = Time

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds returns t expressed in microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Nanoseconds returns t expressed in nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// FromSeconds converts seconds to virtual Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// event is one scheduled callback: afn(arg) runs at time at. All scheduling
// forms reduce to this one shape — At wraps its closure in arg behind a
// static trampoline, Timers pass themselves as arg — so dispatch is a
// single indirect call with no branching, and the struct stays at 40 bytes
// (copies and GC write barriers on heap moves are the hot path's main
// cost). Events are stored by value; scheduling never boxes or allocates:
// func values and pointers are pointer-shaped, so the any conversions
// below are allocation-free.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among same-time events
	afn func(any)
	arg any
}

// runClosure is the dispatch trampoline for the closure-based At/After
// forms.
func runClosure(a any) { a.(func())() }

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create one with NewEngine.
//
// The pending-event queue is a typed 4-ary min-heap ordered by
// (time, insertion sequence). The 4-ary layout halves the tree depth of a
// binary heap (fewer cache lines touched per operation), and the typed
// implementation avoids container/heap's interface{} boxing, so scheduling
// an event never allocates.
type Engine struct {
	now     Time
	seq     uint64
	events  []event
	stopped bool
	bufs    *BufPool
	ids     map[string]int
	group   *Group // non-nil when the engine is one shard of a Group
	shard   int    // index within the group (creation order)

	// Group-scheduler state. wend is the shard's window end for the
	// round in flight (written by the coordinator before the round is
	// published, read by the worker that claims the shard); dirty lists
	// the conduits this shard buffered messages on since the last
	// barrier, so the barrier merge visits only conduits that actually
	// carry traffic instead of scanning the whole topology.
	wend  Time
	dirty []*Conduit
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Group returns the Group this engine belongs to, or nil for a standalone
// engine.
func (e *Engine) Group() *Group { return e.group }

// Shard returns the engine's index within its Group (creation order), or 0
// for a standalone engine.
func (e *Engine) Shard() int { return e.shard }

// NextID returns 1, 2, 3, ... per name, an engine-scoped identity
// allocator. Components that need unique-but-deterministic identities
// (NIC MAC/IP numbering, device names) draw from here instead of a
// package-level counter, so a fresh engine always numbers its world the
// same way — the property replay determinism rests on: two runs of the
// same scenario in one process must build bit-identical clusters.
//
// Engines that belong to a Group share one ID space, so every NIC in a
// sharded cluster still gets a unique MAC/IP no matter which shard built
// it. Identity allocation is a construction-time activity; calling NextID
// from a running shard event is not supported.
func (e *Engine) NextID(name string) int {
	if e.group != nil {
		return e.group.NextID(name)
	}
	if e.ids == nil {
		e.ids = make(map[string]int)
	}
	e.ids[name]++
	return e.ids[name]
}

// Bufs returns the engine's packet-buffer pool, creating it on first use.
// Like the engine itself the pool is single-threaded; see BufPool for the
// ownership discipline.
func (e *Engine) Bufs() *BufPool {
	if e.bufs == nil {
		e.bufs = NewBufPool()
	}
	return e.bufs
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug, and silently reordering events would make
// results nondeterministic in confusing ways.
func (e *Engine) At(t Time, fn func()) { e.push(t, runClosure, fn) }

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) { e.push(e.now+d, runClosure, fn) }

// AtArg schedules fn(arg) at absolute time t. Unlike At, the callback takes
// its state as an explicit argument, so steady-state schedulers can pass a
// preallocated state object to a package-level function instead of
// capturing it in a fresh closure per event. Passing a pointer (or any
// pointer-shaped value) in arg does not allocate.
func (e *Engine) AtArg(t Time, fn func(any), arg any) { e.push(t, fn, arg) }

// AfterArg schedules fn(arg) to run d after the current time.
func (e *Engine) AfterArg(d Duration, fn func(any), arg any) {
	e.push(e.now+d, fn, arg)
}

// push inserts a new event into the heap, assigning its sequence number.
func (e *Engine) push(at Time, afn func(any), arg any) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	h := e.events
	i := len(h)
	if i < cap(h) {
		h = h[:i+1]
		h[i] = event{at: at, seq: e.seq, afn: afn, arg: arg}
	} else {
		h = append(h, event{at: at, seq: e.seq, afn: afn, arg: arg})
	}
	// Sift up: parent of i is (i-1)/4. A new event never moves above an
	// equal-time parent (its seq is the largest yet), preserving FIFO.
	for i > 0 {
		p := (i - 1) / 4
		if h[p].at < h[i].at || (h[p].at == h[i].at && h[p].seq < h[i].seq) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.events = h
}

// shrinkCapMin is the smallest backing-array capacity the shrink policy
// considers; below it the memory at stake is noise.
const shrinkCapMin = 64

// pop removes and returns the earliest event. The vacated tail slot is
// cleared so the backing array does not retain the callback (and whatever
// its closure or arg references) after dispatch, and the array is
// reallocated at half capacity once the queue drains to a quarter of it,
// so a burst (e.g. an overload point of the cluster sweep) does not pin
// its high-water footprint for the rest of a long run.
func (e *Engine) pop() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // clear: do not retain fn/arg through the backing array
	h = h[:n]
	if n > 0 {
		// Sift the former tail down from the root, moving a hole instead
		// of swapping (one 40 B store per level, not three).
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if h[j].at < h[m].at || (h[j].at == h[m].at && h[j].seq < h[m].seq) {
					m = j
				}
			}
			if last.at < h[m].at || (last.at == h[m].at && last.seq < h[m].seq) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	if c := cap(h); c >= shrinkCapMin && n <= c/4 {
		s := make([]event, n, c/2)
		copy(s, h)
		h = s
	}
	e.events = h
	return top
}

// Pending reports the number of scheduled events (including not-yet-expired
// entries of stopped or reset Timers, which fire as no-ops).
func (e *Engine) Pending() int { return len(e.events) }

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes. Subsequent Run calls clear the flag and continue.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := e.pop()
		e.now = ev.at
		ev.afn(ev.arg)
	}
}

// RunUntil executes events with timestamps <= deadline (or until Stop),
// then advances the clock to the deadline.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > deadline {
			break
		}
		ev := e.pop()
		e.now = ev.at
		ev.afn(ev.arg)
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// nextTime reports the timestamp of the earliest pending event.
func (e *Engine) nextTime() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// runBefore executes events with timestamps strictly less than limit. It is
// the shard workhorse of the conservative parallel scheduler: within a
// window [T, T+lookahead) no cross-shard message can arrive, so every shard
// may run its own events for the window without coordination. The strict
// inequality matters — an event exactly at the window end may race a
// cross-shard arrival at the same instant and belongs to the next round.
func (e *Engine) runBefore(limit Time) {
	for len(e.events) > 0 {
		if e.events[0].at >= limit {
			return
		}
		ev := e.pop()
		e.now = ev.at
		ev.afn(ev.arg)
	}
}

// AdvanceTo moves the clock forward to t without executing anything.
// Scheduling helpers (After, resource reservations) measure from Now, so a
// shard that idled through a window must still observe the global time when
// a barrier action pokes it. Moving backwards is a no-op.
func (e *Engine) AdvanceTo(t Time) {
	if t > e.now {
		e.now = t
	}
}
