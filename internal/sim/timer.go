package sim

// Timer is a reusable one-shot timer. It exists so steady-state schedulers
// (doorbell coalescing, ACK delay, retransmission timeouts, CQ moderation)
// can rearm the same preallocated object millions of times without
// allocating a closure per event.
//
// Reset and Stop use lazy cancellation: every Reset pushes a fresh heap
// entry, and an entry fires the callback only if the timer is still armed
// with that entry's deadline. Superseded entries fire as no-ops when their
// original expiry comes up. This keeps Reset O(log n) and allocation-free
// at the cost of stale entries occupying the queue — exactly the cost the
// closure-per-arm pattern it replaces paid, minus the allocations.
//
// If Reset is called twice with the same resulting deadline, the callback
// runs at the earlier entry's queue position (it fires exactly once either
// way). A Timer is single-threaded like its Engine, and the callback runs
// with the timer already disarmed, so it may Reset the timer again.
type Timer struct {
	eng   *Engine
	fn    func(any)
	arg   any
	when  Time
	armed bool
}

// NewTimer returns an unarmed timer that calls fn(arg) when it expires.
func (e *Engine) NewTimer(fn func(any), arg any) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	return &Timer{eng: e, fn: fn, arg: arg}
}

// timerExpire is the heap entry's callback: it fires the timer only if the
// entry is still current (armed, and the deadline was not moved by a later
// Reset or cleared by Stop).
func timerExpire(a any) {
	t := a.(*Timer)
	if !t.armed || t.when != t.eng.now {
		return
	}
	t.armed = false
	t.fn(t.arg)
}

// Reset (re)arms the timer to expire d from now, superseding any earlier
// deadline.
func (t *Timer) Reset(d Duration) { t.ResetAt(t.eng.now + d) }

// ResetAt (re)arms the timer to expire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.armed = true
	t.when = at
	t.eng.push(at, timerExpire, t)
}

// Stop disarms the timer and reports whether it was armed. Stopping never
// removes the pending heap entry; it fires as a no-op.
func (t *Timer) Stop() bool {
	was := t.armed
	t.armed = false
	return was
}

// Armed reports whether the timer currently has a live deadline.
func (t *Timer) Armed() bool { return t.armed }

// When returns the live deadline; only meaningful while Armed.
func (t *Timer) When() Time { return t.when }
