package sim

import (
	"fmt"
	"sync/atomic"
)

// Group joins several Engines — one per node shard — under a conservative
// parallel scheduler.
//
// The scheduler exploits the one physical fact that makes node shards
// independent: every cross-shard interaction crosses a link with nonzero
// latency. If L (the lookahead) is the minimum latency of any cross-shard
// link, then an event executed at time t can only influence another shard
// at t+L or later. The group therefore advances in rounds: find the
// earliest pending event time T across all shards, let every shard run its
// own events inside its window on its own goroutine, then synchronize at a
// barrier where cross-shard messages (buffered in Conduits during the
// round) are merged and injected into their destination engines.
//
// Windows are per-shard and adaptive. Every shard but the one holding the
// global minimum T runs the classic conservative window [T, T+L). The
// owner of T may run further, to min(min2+L, T+2L), where min2 is the
// earliest pending event on any *other* shard: nothing another shard
// still has to execute reaches the owner before min2+L, and the owner's
// own output — which can seed an idle neighbor with work as early as
// T+L — boomerangs back no earlier than T+2L. That grows windows when
// cross-shard traffic is sparse; a group with no cross-shard conduits at
// all (a fully co-located model) has no influence paths and runs every
// shard straight to the next control or deadline. Shards with no events
// before their window end are skipped entirely: no wakeup, no barrier
// work, no merge scan.
//
// Determinism does not depend on the number of worker goroutines. The
// window bounds are a pure function of per-shard next-event times, and
// within a round shards touch only their own state plus per-conduit
// outboxes owned by the sending shard; at the barrier the coordinator
// merges all buffered messages in (arrival time, conduit ID, send index)
// order and injects them in that order, so destination-engine sequence
// numbers — and hence the (time, seq) execution order — come out identical
// whether the round ran on one worker or eight. Sequential mode
// (SetWorkers(1)) runs the same rounds in shard-index order inline on the
// coordinator and is the determinism reference.
//
// Zero lookahead degenerates gracefully: windows shrink to a single
// picosecond instant, rounds crawl one timestamp at a time, and messages
// sent at time t arrive at t in the next round at the same instant. Slow,
// but still correct and still deterministic. (The run-ahead extension is
// disabled at zero lookahead: a message sent at t can be answered at t,
// and the answer must not land behind a shard that ran past t.)
//
// Construction (NewEngine, Conduit wiring, Control scheduling from outside
// a run) is single-threaded, like everything else at build time. During a
// round, shard events must not touch group state; Control actions run at
// barriers on the coordinator goroutine and may touch everything.
type Group struct {
	engines   []*Engine
	conduits  []*Conduit
	lookahead Duration
	workers   int
	now       Time
	ids       map[string]int

	controls []control
	ctlSeq   uint64

	// Barrier scratch, reused across rounds so the steady state does not
	// allocate.
	active []*Engine
	dirty  []*Conduit // conduits with buffered messages, gathered per barrier
	mh     []*Conduit // k-way merge heap over the dirty conduits

	// inRound is true while shard events execute (set before a round is
	// published to the workers, cleared after the barrier), guarding the
	// Conduit lookahead check: only sends from shard events must respect
	// the lookahead; controls and construction inject before any shard
	// has run past them.
	inRound bool

	stats GroupStats

	// Worker-pool state for the current run. Workers are spawned at the
	// start of a parallel run and torn down when it returns, so an idle
	// group holds no goroutines.
	rounds chan *roundState
	doneCh chan struct{}
	nwork  int
}

// GroupStats are scheduler-observability counters, cumulative over the
// group's lifetime. They are deterministic: a fixed scenario produces the
// same counts at any worker setting.
type GroupStats struct {
	// Rounds counts barrier rounds executed.
	Rounds int64
	// Merged counts cross-shard messages injected at barriers.
	Merged int64
	// ShardRounds counts, per shard index, the rounds that shard was
	// active in (had events inside its window). A quiescent shard's
	// count stays put — the idle-shard skip.
	ShardRounds []int64
}

// Stats returns a snapshot of the group's scheduler counters.
func (g *Group) Stats() GroupStats {
	s := g.stats
	s.ShardRounds = append([]int64(nil), g.stats.ShardRounds...)
	return s
}

// maxTime is the largest representable instant, used as "no bound".
const maxTime = Time(1<<63 - 1)

// roundState is one round's work descriptor. It is a fresh object per
// round so that a worker whose token delivery straggles past the barrier
// finds an exhausted cursor and parks, instead of claiming work from the
// next round with a stale shard set. Each shard's window limit rides on
// the engine itself (Engine.wend), written by the coordinator before the
// descriptor is published.
type roundState struct {
	act   []*Engine
	claim atomic.Int64
	left  atomic.Int64
}

// control is a barrier action: fn runs at time at on the coordinator
// goroutine, with every shard quiesced and advanced to at. Controls are
// the sharded replacement for "global" events — watchdogs that poll every
// node, recovery passes, phase changes.
type control struct {
	at  Time
	seq uint64
	fn  func()
}

// NewGroup returns an empty group with lookahead 0 and workers 1.
func NewGroup() *Group {
	return &Group{workers: 1, ids: make(map[string]int)}
}

// NewEngine creates a new shard engine owned by the group. Shard indices
// follow creation order and are stable for a given construction sequence.
func (g *Group) NewEngine() *Engine {
	e := &Engine{group: g, shard: len(g.engines)}
	g.engines = append(g.engines, e)
	return e
}

// Engines returns the group's shard engines in creation order. The slice
// is the group's own; callers must not mutate it.
func (g *Group) Engines() []*Engine { return g.engines }

// SetLookahead declares the minimum latency of any cross-shard link. The
// scheduler never lets a shard run further ahead than the earliest event
// another shard could still send it. Setting it too large breaks
// causality (the Conduit send path panics when a message would arrive
// inside the sender's lookahead horizon); too small only costs barrier
// rounds.
func (g *Group) SetLookahead(d Duration) {
	if d < 0 {
		d = 0
	}
	g.lookahead = d
}

// Lookahead returns the configured lookahead.
func (g *Group) Lookahead() Duration { return g.lookahead }

// SetWorkers sets the number of goroutines that execute shards within a
// round. 1 (the default) is fully sequential: same rounds, same results,
// one goroutine — the reference mode for determinism checks.
func (g *Group) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	g.workers = n
}

// Workers returns the configured worker count.
func (g *Group) Workers() int { return g.workers }

// Now returns the group's notion of current time: the maximum of the
// barrier clock and every shard clock. It is exact at barriers (where
// controls and snapshots run) and within one window elsewhere.
func (g *Group) Now() Time {
	t := g.now
	for _, e := range g.engines {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// NextID allocates from the group-wide identity space shared by all shard
// engines. Construction-time only.
func (g *Group) NextID(name string) int {
	g.ids[name]++
	return g.ids[name]
}

// Control schedules fn to run at absolute time t on the coordinator, with
// all shards quiesced up to t and their clocks advanced to t. Controls at
// the same instant run in scheduling order, before any shard event at t.
// Call it at construction time or from within another control action —
// never from a shard event, which would race the coordinator.
func (g *Group) Control(t Time, fn func()) {
	if t < g.now {
		panic(fmt.Sprintf("sim: scheduling control at %v before now %v", t, g.now))
	}
	g.ctlSeq++
	g.controls = append(g.controls, control{at: t, seq: g.ctlSeq, fn: fn})
}

// Pending reports the total number of scheduled events across all shards,
// pending conduit messages, and pending controls.
func (g *Group) Pending() int {
	n := len(g.controls)
	for _, e := range g.engines {
		n += e.Pending()
	}
	for _, c := range g.conduits {
		n += len(c.out)
	}
	return n
}

// Run executes events until every shard's queue drains and no conduit
// messages or controls remain.
func (g *Group) Run() {
	g.run(0, true)
	// Leave every clock at the global end time so post-run inspection
	// (telemetry snapshots, rate math) sees one consistent instant.
	g.advanceAll(g.Now())
	g.now = g.Now()
}

// RunUntil executes events with timestamps <= deadline, then advances
// every clock to the deadline.
func (g *Group) RunUntil(deadline Time) {
	g.run(deadline, false)
	g.advanceAll(deadline)
	if g.now < deadline {
		g.now = deadline
	}
}

// run is the round loop shared by Run and RunUntil.
func (g *Group) run(deadline Time, drain bool) {
	par := g.workers > 1 && len(g.engines) > 1
	if par {
		g.startWorkers()
		defer g.stopWorkers()
	}
	// Construction and controls from a previous run may have left
	// messages in conduit outboxes; the scans below must see them in
	// engine heaps.
	g.flushAll()
	for {
		tNext, min2, haveE := g.nextEventTimes()
		cAt, haveC := g.nextControlTime()

		if haveC && (!haveE || cAt <= tNext) {
			if !drain && cAt > deadline {
				return
			}
			// Every event before cAt is done (tNext >= cAt), so the
			// barrier action sees a fully quiesced world at cAt.
			g.advanceAll(cAt)
			if g.now < cAt {
				g.now = cAt
			}
			g.runControlsAt(cAt)
			// Controls may send on any conduit, not just ones the last
			// round's shards own — gather from the whole topology.
			g.flushAll()
			continue
		}
		if !haveE {
			return
		}
		if !drain && tNext > deadline {
			return
		}

		// Per-shard windows. base bounds every shard: nothing in flight
		// or still to execute elsewhere arrives before tNext+L. The
		// shard holding tNext itself may run further: other shards'
		// pending events reach it at min2+L or later, and its *own*
		// sends — which can seed an idle neighbor with work as early as
		// tNext+L — boomerang back no sooner than tNext+2L. The tighter
		// of the two is its window. A group with no cross-shard
		// conduits has no influence paths at all, and every shard runs
		// straight to the control/deadline bound.
		base := tNext + g.lookahead
		if base <= tNext {
			// Zero lookahead: degenerate to lockstep single-instant
			// rounds. Messages sent at tNext arrive at tNext next round.
			base = tNext + 1
		}
		ownerEnd := maxTime
		if len(g.conduits) == 0 {
			base = maxTime
		} else {
			m := min2
			if t2 := tNext + g.lookahead; t2 < m {
				m = t2
			}
			if m < maxTime-g.lookahead {
				ownerEnd = m + g.lookahead
			}
			if g.lookahead == 0 {
				// A zero-latency reply chain (send at t, answer at t)
				// must not land behind a shard that ran past t: no
				// run-ahead.
				ownerEnd = base
			}
			if ownerEnd < base {
				ownerEnd = base
			}
		}
		bound := maxTime
		if haveC && cAt < bound {
			bound = cAt
		}
		if !drain && deadline+1 < bound {
			bound = deadline + 1
		}
		if base > bound {
			base = bound
		}
		if ownerEnd > bound {
			ownerEnd = bound
		}
		g.round(base, ownerEnd, tNext, par)
		g.flushRound()
	}
}

// nextEventTimes scans the shards once for the two globally earliest
// pending-event times: min1 is the global minimum, min2 the earliest
// outside one shard holding min1 (maxTime when no second shard has
// events) — the bound that lets the min1 shard run ahead.
func (g *Group) nextEventTimes() (min1, min2 Time, have bool) {
	min1, min2 = maxTime, maxTime
	for _, e := range g.engines {
		if len(e.events) == 0 {
			continue
		}
		have = true
		t := e.events[0].at
		if t < min1 {
			min2 = min1
			min1 = t
		} else if t < min2 {
			min2 = t
		}
	}
	return min1, min2, have
}

// nextControlTime reports the earliest pending control.
func (g *Group) nextControlTime() (Time, bool) {
	var best Time
	var seq uint64
	have := false
	for i := range g.controls {
		c := &g.controls[i]
		if !have || c.at < best || (c.at == best && c.seq < seq) {
			best, seq, have = c.at, c.seq, true
		}
	}
	return best, have
}

// runControlsAt executes all controls due at instant t in scheduling
// order, including ones a control schedules at the same instant.
func (g *Group) runControlsAt(t Time) {
	for {
		mi := -1
		var seq uint64
		for i := range g.controls {
			c := &g.controls[i]
			if c.at != t {
				continue
			}
			if mi < 0 || c.seq < seq {
				mi, seq = i, c.seq
			}
		}
		if mi < 0 {
			return
		}
		fn := g.controls[mi].fn
		last := len(g.controls) - 1
		g.controls[mi] = g.controls[last]
		g.controls[last] = control{}
		g.controls = g.controls[:last]
		fn()
	}
}

// advanceAll moves every shard clock forward to t.
func (g *Group) advanceAll(t Time) {
	for _, e := range g.engines {
		e.AdvanceTo(t)
	}
}

// round runs every shard with work before its window end — ownerEnd for
// shards holding the global minimum min1, base for the rest — skipping
// idle shards entirely, concurrently when par and more than one shard is
// active.
func (g *Group) round(base, ownerEnd, min1 Time, par bool) {
	for len(g.stats.ShardRounds) < len(g.engines) {
		g.stats.ShardRounds = append(g.stats.ShardRounds, 0)
	}
	act := g.active[:0]
	for _, e := range g.engines {
		if len(e.events) == 0 {
			continue
		}
		t := e.events[0].at
		end := base
		if t == min1 {
			// Ties all see min2 == min1, so ownerEnd == base and the
			// extension is exact for any number of co-minimal shards.
			end = ownerEnd
		}
		if t < end {
			e.wend = end
			act = append(act, e)
			g.stats.ShardRounds[e.shard]++
		}
	}
	g.active = act
	if len(act) == 0 {
		return
	}
	g.stats.Rounds++
	g.inRound = true
	if !par || len(act) == 1 {
		for _, e := range act {
			e.runBefore(e.wend)
		}
		g.inRound = false
		return
	}
	// Parallel round: workers claim shards off the round descriptor via
	// its atomic cursor. The token send publishes the descriptor (and
	// every shard's wend) to the workers; the worker that finishes the
	// last shard signals done, which publishes every shard's state back
	// to the coordinator, so the barrier merge observes a consistent
	// world without locks.
	rs := &roundState{act: act}
	rs.left.Store(int64(len(act)))
	n := g.nwork
	if n > len(act) {
		n = len(act)
	}
	for i := 0; i < n; i++ {
		g.rounds <- rs
	}
	<-g.doneCh
	g.inRound = false
}

// startWorkers spawns the round-execution goroutines for one run call.
func (g *Group) startWorkers() {
	n := g.workers
	if n > len(g.engines) {
		n = len(g.engines)
	}
	g.nwork = n
	g.rounds = make(chan *roundState)
	g.doneCh = make(chan struct{})
	for i := 0; i < n; i++ {
		go g.worker(g.rounds, g.doneCh)
	}
}

// stopWorkers tears the pool down; parked workers exit on channel close.
func (g *Group) stopWorkers() {
	close(g.rounds)
	g.rounds = nil
	g.doneCh = nil
}

// worker executes rounds: claim a shard, run it to its window end, repeat
// until the round's shards are exhausted. The worker that finishes the
// last shard signals the coordinator. Channels come in as parameters so a
// worker never touches group fields the coordinator rewrites between runs.
func (g *Group) worker(rounds <-chan *roundState, done chan<- struct{}) {
	for rs := range rounds {
		for {
			i := int(rs.claim.Add(1)) - 1
			if i >= len(rs.act) {
				break
			}
			e := rs.act[i]
			e.runBefore(e.wend)
			if rs.left.Add(-1) == 0 {
				done <- struct{}{}
			}
		}
	}
}

// --- Conduits ------------------------------------------------------------

// cmsg is one buffered cross-shard message: a frame and its arrival time.
type cmsg struct {
	at    Time
	frame []byte
}

// dnode carries a delivery through the destination engine's event heap and
// is recycled on a per-conduit freelist, so steady-state crossings do not
// allocate. The freelist is touched by the coordinator (get, at barriers)
// and the destination shard (put, during rounds); barrier alternation
// orders the two, so no lock is needed.
type dnode struct {
	c     *Conduit
	frame []byte
	next  *dnode
}

// conduitDeliver is the static dispatch trampoline for conduit arrivals.
// The node is recycled before the handler runs, so a handler that triggers
// another crossing on the same conduit can reuse it immediately.
func conduitDeliver(a any) {
	d := a.(*dnode)
	c := d.c
	f := d.frame
	d.frame = nil
	d.next = c.freeD
	c.freeD = d
	c.deliver(f)
}

// Conduit is a one-directional cross-shard message channel — the model's
// link seam. The source shard buffers sends during a round; the barrier
// merge injects them into the destination engine in (arrival time, conduit
// ID, send index) order. Handlers run on the destination shard at the
// arrival time and read the frame only; a frame handed to Send must not be
// mutated afterwards (concurrent readers on another shard may hold it).
//
// A conduit whose endpoints are the same engine (a co-located pair, or a
// model built on one standalone engine) degenerates to a direct schedule
// on that engine — same semantics, no barrier involvement.
type Conduit struct {
	g       *Group
	id      int
	src     *Engine
	dst     *Engine
	deliver func(frame []byte)
	out     []cmsg
	freeD   *dnode

	// sorted tracks whether out was appended in non-decreasing arrival
	// order (the overwhelmingly common case: a shard's clock only moves
	// forward and most links add a fixed latency), letting the barrier
	// merge treat it as a ready-sorted run. inDirty dedups registration
	// on the source engine's dirty list; head is the merge cursor.
	sorted  bool
	inDirty bool
	head    int
}

// NewConduit wires a one-directional channel from src to dst. deliver runs
// on dst's shard at each message's arrival time. Distinct engines must
// belong to the same group.
func NewConduit(src, dst *Engine, deliver func(frame []byte)) *Conduit {
	c := &Conduit{src: src, dst: dst, deliver: deliver}
	if src != dst {
		if src.group == nil || src.group != dst.group {
			panic("sim: conduit endpoints must share a group")
		}
		c.g = src.group
		c.id = len(c.g.conduits)
		c.g.conduits = append(c.g.conduits, c)
	}
	return c
}

// Src returns the source engine.
func (c *Conduit) Src() *Engine { return c.src }

// Dst returns the destination engine.
func (c *Conduit) Dst() *Engine { return c.dst }

// Send schedules frame to arrive at absolute time at. Call it from the
// source shard (or from a control action). From a shard event the arrival
// must respect the group's lookahead — at least one lookahead after the
// sender's clock — which holds by construction when the lookahead is the
// minimum cross-shard link latency; the per-shard run-ahead windows lean
// on that bound, so violating it panics rather than corrupting causality.
func (c *Conduit) Send(at Time, frame []byte) {
	if c.src == c.dst {
		d := c.get(frame)
		c.src.push(at, conduitDeliver, d)
		return
	}
	if g := c.g; g.inRound && at < c.src.now+g.lookahead {
		panic(fmt.Sprintf("sim: conduit message at %v violates lookahead %v from shard time %v",
			at, g.lookahead, c.src.now))
	}
	if n := len(c.out); n == 0 {
		c.sorted = true
	} else if at < c.out[n-1].at {
		c.sorted = false
	}
	c.out = append(c.out, cmsg{at: at, frame: frame})
	if !c.inDirty {
		c.inDirty = true
		c.src.dirty = append(c.src.dirty, c)
	}
}

// get pops a delivery node off the freelist.
func (c *Conduit) get(frame []byte) *dnode {
	d := c.freeD
	if d == nil {
		d = &dnode{c: c}
	} else {
		c.freeD = d.next
		d.next = nil
	}
	d.frame = frame
	return d
}

// sortRun restores arrival order within one conduit's buffered run. The
// common case is a no-op; a retrograde append (variable extra delay from
// a fault plan, say) falls back to a stable insertion sort, preserving
// send order among equal arrival times so the merged order stays the
// documented (arrival time, conduit ID, send index).
func (c *Conduit) sortRun() {
	if c.sorted {
		return
	}
	out := c.out
	for i := 1; i < len(out); i++ {
		m := out[i]
		j := i - 1
		for j >= 0 && out[j].at > m.at {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = m
	}
	c.sorted = true
}

// flushAll gathers every conduit with buffered messages and merges them
// into the destination engines. Used at run start and after control
// actions — contexts that may send on conduits whose source shard was not
// in the last round's active set. Also resets every engine's dirty list,
// so flushRound's incremental bookkeeping restarts clean.
func (g *Group) flushAll() {
	for _, e := range g.engines {
		e.dirty = e.dirty[:0]
	}
	d := g.dirty[:0]
	for _, c := range g.conduits {
		c.inDirty = false
		if len(c.out) > 0 {
			d = append(d, c)
		}
	}
	g.dirty = d
	g.merge()
}

// flushRound gathers the conduits dirtied by the shards that ran in the
// last round — the only place shard execution can buffer cross-shard
// sends — so a barrier's merge cost scales with the traffic that actually
// crossed, not with the topology. Idle shards contribute nothing.
func (g *Group) flushRound() {
	d := g.dirty[:0]
	for _, e := range g.active {
		for _, c := range e.dirty {
			c.inDirty = false
			if len(c.out) > 0 {
				d = append(d, c)
			}
		}
		e.dirty = e.dirty[:0]
	}
	g.dirty = d
	g.merge()
}

// cless orders the merge heap by (head arrival time, conduit ID).
func cless(a, b *Conduit) bool {
	aa, ba := a.out[a.head].at, b.out[b.head].at
	return aa < ba || (aa == ba && a.id < b.id)
}

func siftUpC(h []*Conduit, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if cless(h[p], h[i]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func siftDownC(h []*Conduit, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && cless(h[r], h[l]) {
			m = r
		}
		if cless(h[i], h[m]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// merge injects every buffered message on the gathered dirty conduits
// into the destination engines in (arrival time, conduit ID, send index)
// order. That order is a pure function of what the shards produced — not
// of which worker ran them or when — so the injected sequence numbers,
// and every subsequent tie-break, are identical in sequential and
// parallel runs. Runs on the coordinator between rounds. Each conduit's
// outbox is a (nearly always pre-sorted) run, so the merge is a k-way
// heap walk over per-conduit cursors: no per-message scratch records, no
// global sort, and all scratch is reused, so steady state does not
// allocate.
func (g *Group) merge() {
	d := g.dirty
	switch len(d) {
	case 0:
		return
	case 1:
		c := d[0]
		c.sortRun()
		for i := range c.out {
			m := &c.out[i]
			c.dst.push(m.at, conduitDeliver, c.get(m.frame))
			m.frame = nil
		}
		g.stats.Merged += int64(len(c.out))
		c.out = c.out[:0]
		return
	}
	h := g.mh[:0]
	for _, c := range d {
		c.sortRun()
		c.head = 0
		h = append(h, c)
		siftUpC(h, len(h)-1)
	}
	for len(h) > 0 {
		c := h[0]
		m := &c.out[c.head]
		c.dst.push(m.at, conduitDeliver, c.get(m.frame))
		m.frame = nil
		g.stats.Merged++
		c.head++
		if c.head == len(c.out) {
			c.out = c.out[:0]
			n := len(h) - 1
			h[0] = h[n]
			h[n] = nil
			h = h[:n]
		}
		if len(h) > 0 {
			siftDownC(h, 0)
		}
	}
	g.mh = h[:0]
}
