package sim

import (
	"fmt"
	"sync/atomic"
)

// Group joins several Engines — one per node shard — under a conservative
// parallel scheduler.
//
// The scheduler exploits the one physical fact that makes node shards
// independent: every cross-shard interaction crosses a link with nonzero
// latency. If L (the lookahead) is the minimum latency of any cross-shard
// link, then an event executed at time t can only influence another shard
// at t+L or later. The group therefore advances in rounds: find the
// earliest pending event time T across all shards, let every shard run its
// own events in the window [T, T+L) on its own goroutine, then synchronize
// at a barrier where cross-shard messages (buffered in Conduits during the
// round) are merged and injected into their destination engines.
//
// Determinism does not depend on the number of worker goroutines. Within a
// round, shards touch only their own state plus per-conduit outboxes owned
// by the sending shard; at the barrier the coordinator sorts all buffered
// messages by (arrival time, conduit ID, send index) and injects them in
// that order, so destination-engine sequence numbers — and hence the
// (time, seq) execution order — come out identical whether the round ran
// on one worker or eight. Sequential mode (SetWorkers(1)) runs the same
// rounds in shard-index order and is the determinism reference.
//
// Zero lookahead degenerates gracefully: windows shrink to a single
// picosecond instant, rounds crawl one timestamp at a time, and messages
// sent at time t arrive at t in the next round at the same instant. Slow,
// but still correct and still deterministic.
//
// Construction (NewEngine, Conduit wiring, Control scheduling from outside
// a run) is single-threaded, like everything else at build time. During a
// round, shard events must not touch group state; Control actions run at
// barriers on the coordinator goroutine and may touch everything.
type Group struct {
	engines   []*Engine
	conduits  []*Conduit
	lookahead Duration
	workers   int
	now       Time
	ids       map[string]int

	controls []control
	ctlSeq   uint64

	// Barrier scratch, reused across rounds so the steady state does not
	// allocate.
	active []*Engine
	refs   []mref

	// Worker-pool state for the current run. Workers are spawned at the
	// start of a parallel run and torn down when it returns, so an idle
	// group holds no goroutines.
	rounds chan *roundState
	doneCh chan struct{}
	nwork  int
}

// roundState is one round's work descriptor. It is a fresh object per
// round so that a worker whose token delivery straggles past the barrier
// finds an exhausted cursor and parks, instead of claiming work from the
// next round with a stale window limit.
type roundState struct {
	act   []*Engine
	limit Time
	claim atomic.Int64
	left  atomic.Int64
}

// control is a barrier action: fn runs at time at on the coordinator
// goroutine, with every shard quiesced and advanced to at. Controls are
// the sharded replacement for "global" events — watchdogs that poll every
// node, recovery passes, phase changes.
type control struct {
	at  Time
	seq uint64
	fn  func()
}

// NewGroup returns an empty group with lookahead 0 and workers 1.
func NewGroup() *Group {
	return &Group{workers: 1, ids: make(map[string]int)}
}

// NewEngine creates a new shard engine owned by the group. Shard indices
// follow creation order and are stable for a given construction sequence.
func (g *Group) NewEngine() *Engine {
	e := &Engine{group: g, shard: len(g.engines)}
	g.engines = append(g.engines, e)
	return e
}

// Engines returns the group's shard engines in creation order. The slice
// is the group's own; callers must not mutate it.
func (g *Group) Engines() []*Engine { return g.engines }

// SetLookahead declares the minimum latency of any cross-shard link. The
// scheduler never lets a shard run more than this far ahead of the
// globally earliest event. Setting it too large breaks causality (the
// Conduit send path panics when a message would arrive inside the current
// window); too small only costs barrier rounds.
func (g *Group) SetLookahead(d Duration) {
	if d < 0 {
		d = 0
	}
	g.lookahead = d
}

// Lookahead returns the configured lookahead.
func (g *Group) Lookahead() Duration { return g.lookahead }

// SetWorkers sets the number of goroutines that execute shards within a
// round. 1 (the default) is fully sequential: same rounds, same results,
// one goroutine — the reference mode for determinism checks.
func (g *Group) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	g.workers = n
}

// Workers returns the configured worker count.
func (g *Group) Workers() int { return g.workers }

// Now returns the group's notion of current time: the maximum of the
// barrier clock and every shard clock. It is exact at barriers (where
// controls and snapshots run) and within one lookahead window elsewhere.
func (g *Group) Now() Time {
	t := g.now
	for _, e := range g.engines {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// NextID allocates from the group-wide identity space shared by all shard
// engines. Construction-time only.
func (g *Group) NextID(name string) int {
	g.ids[name]++
	return g.ids[name]
}

// Control schedules fn to run at absolute time t on the coordinator, with
// all shards quiesced up to t and their clocks advanced to t. Controls at
// the same instant run in scheduling order, before any shard event at t.
// Call it at construction time or from within another control action —
// never from a shard event, which would race the coordinator.
func (g *Group) Control(t Time, fn func()) {
	if t < g.now {
		panic(fmt.Sprintf("sim: scheduling control at %v before now %v", t, g.now))
	}
	g.ctlSeq++
	g.controls = append(g.controls, control{at: t, seq: g.ctlSeq, fn: fn})
}

// Pending reports the total number of scheduled events across all shards,
// pending conduit messages, and pending controls.
func (g *Group) Pending() int {
	n := len(g.controls)
	for _, e := range g.engines {
		n += e.Pending()
	}
	for _, c := range g.conduits {
		n += len(c.out)
	}
	return n
}

// Run executes events until every shard's queue drains and no conduit
// messages or controls remain.
func (g *Group) Run() {
	g.run(0, true)
	// Leave every clock at the global end time so post-run inspection
	// (telemetry snapshots, rate math) sees one consistent instant.
	g.advanceAll(g.Now())
	g.now = g.Now()
}

// RunUntil executes events with timestamps <= deadline, then advances
// every clock to the deadline.
func (g *Group) RunUntil(deadline Time) {
	g.run(deadline, false)
	g.advanceAll(deadline)
	if g.now < deadline {
		g.now = deadline
	}
}

// run is the round loop shared by Run and RunUntil.
func (g *Group) run(deadline Time, drain bool) {
	par := g.workers > 1 && len(g.engines) > 1
	if par {
		g.startWorkers()
		defer g.stopWorkers()
	}
	for {
		// Flush first: controls and the previous round may have left
		// messages in conduit outboxes, and both the next-event scan and
		// the quiescence check below must see them in engine heaps.
		g.flush()

		tNext, haveE := g.nextEventTime()
		cAt, haveC := g.nextControlTime()

		if haveC && (!haveE || cAt <= tNext) {
			if !drain && cAt > deadline {
				return
			}
			// Every event before cAt is done (tNext >= cAt), so the
			// barrier action sees a fully quiesced world at cAt.
			g.advanceAll(cAt)
			if g.now < cAt {
				g.now = cAt
			}
			g.runControlsAt(cAt)
			continue
		}
		if !haveE {
			return
		}
		if !drain && tNext > deadline {
			return
		}

		end := tNext + g.lookahead
		if end <= tNext {
			// Zero lookahead: degenerate to lockstep single-instant
			// rounds. Messages sent at tNext arrive at tNext next round.
			end = tNext + 1
		}
		if haveC && cAt < end {
			end = cAt
		}
		if !drain && deadline+1 < end {
			end = deadline + 1
		}
		g.round(end, par)
	}
}

// nextEventTime scans the shards for the globally earliest pending event.
func (g *Group) nextEventTime() (Time, bool) {
	var best Time
	have := false
	for _, e := range g.engines {
		if t, ok := e.nextTime(); ok && (!have || t < best) {
			best, have = t, true
		}
	}
	return best, have
}

// nextControlTime reports the earliest pending control.
func (g *Group) nextControlTime() (Time, bool) {
	var best Time
	var seq uint64
	have := false
	for i := range g.controls {
		c := &g.controls[i]
		if !have || c.at < best || (c.at == best && c.seq < seq) {
			best, seq, have = c.at, c.seq, true
		}
	}
	return best, have
}

// runControlsAt executes all controls due at instant t in scheduling
// order, including ones a control schedules at the same instant.
func (g *Group) runControlsAt(t Time) {
	for {
		mi := -1
		var seq uint64
		for i := range g.controls {
			c := &g.controls[i]
			if c.at != t {
				continue
			}
			if mi < 0 || c.seq < seq {
				mi, seq = i, c.seq
			}
		}
		if mi < 0 {
			return
		}
		fn := g.controls[mi].fn
		last := len(g.controls) - 1
		g.controls[mi] = g.controls[last]
		g.controls[last] = control{}
		g.controls = g.controls[:last]
		fn()
	}
}

// advanceAll moves every shard clock forward to t.
func (g *Group) advanceAll(t Time) {
	for _, e := range g.engines {
		e.AdvanceTo(t)
	}
}

// round runs every shard with work before end, concurrently when par and
// more than one shard is active.
func (g *Group) round(end Time, par bool) {
	act := g.active[:0]
	for _, e := range g.engines {
		if t, ok := e.nextTime(); ok && t < end {
			act = append(act, e)
		}
	}
	g.active = act
	if len(act) == 0 {
		return
	}
	if !par || len(act) == 1 {
		for _, e := range act {
			e.runBefore(end)
		}
		return
	}
	// Parallel round: workers claim shards off the round descriptor via
	// its atomic cursor. The token send publishes the descriptor to the
	// workers; the worker that finishes the last shard signals done,
	// which publishes every shard's state back to the coordinator, so
	// the barrier merge observes a consistent world without locks.
	rs := &roundState{act: act, limit: end}
	rs.left.Store(int64(len(act)))
	n := g.nwork
	if n > len(act) {
		n = len(act)
	}
	for i := 0; i < n; i++ {
		g.rounds <- rs
	}
	<-g.doneCh
}

// startWorkers spawns the round-execution goroutines for one run call.
func (g *Group) startWorkers() {
	n := g.workers
	if n > len(g.engines) {
		n = len(g.engines)
	}
	g.nwork = n
	g.rounds = make(chan *roundState)
	g.doneCh = make(chan struct{})
	for i := 0; i < n; i++ {
		go g.worker(g.rounds, g.doneCh)
	}
}

// stopWorkers tears the pool down; parked workers exit on channel close.
func (g *Group) stopWorkers() {
	close(g.rounds)
	g.rounds = nil
	g.doneCh = nil
}

// worker executes rounds: claim a shard, run it to the window end, repeat
// until the round's shards are exhausted. The worker that finishes the
// last shard signals the coordinator. Channels come in as parameters so a
// worker never touches group fields the coordinator rewrites between runs.
func (g *Group) worker(rounds <-chan *roundState, done chan<- struct{}) {
	for rs := range rounds {
		for {
			i := int(rs.claim.Add(1)) - 1
			if i >= len(rs.act) {
				break
			}
			rs.act[i].runBefore(rs.limit)
			if rs.left.Add(-1) == 0 {
				done <- struct{}{}
			}
		}
	}
}

// --- Conduits ------------------------------------------------------------

// cmsg is one buffered cross-shard message: a frame and its arrival time.
type cmsg struct {
	at    Time
	frame []byte
}

// dnode carries a delivery through the destination engine's event heap and
// is recycled on a per-conduit freelist, so steady-state crossings do not
// allocate. The freelist is touched by the coordinator (get, at barriers)
// and the destination shard (put, during rounds); barrier alternation
// orders the two, so no lock is needed.
type dnode struct {
	c     *Conduit
	frame []byte
	next  *dnode
}

// conduitDeliver is the static dispatch trampoline for conduit arrivals.
// The node is recycled before the handler runs, so a handler that triggers
// another crossing on the same conduit can reuse it immediately.
func conduitDeliver(a any) {
	d := a.(*dnode)
	c := d.c
	f := d.frame
	d.frame = nil
	d.next = c.freeD
	c.freeD = d
	c.deliver(f)
}

// Conduit is a one-directional cross-shard message channel — the model's
// link seam. The source shard buffers sends during a round; the barrier
// merge injects them into the destination engine in (arrival time, conduit
// ID, send index) order. Handlers run on the destination shard at the
// arrival time and read the frame only; a frame handed to Send must not be
// mutated afterwards (concurrent readers on another shard may hold it).
//
// A conduit whose endpoints are the same engine (a co-located pair, or a
// model built on one standalone engine) degenerates to a direct schedule
// on that engine — same semantics, no barrier involvement.
type Conduit struct {
	g       *Group
	id      int
	src     *Engine
	dst     *Engine
	deliver func(frame []byte)
	out     []cmsg
	freeD   *dnode
}

// NewConduit wires a one-directional channel from src to dst. deliver runs
// on dst's shard at each message's arrival time. Distinct engines must
// belong to the same group.
func NewConduit(src, dst *Engine, deliver func(frame []byte)) *Conduit {
	c := &Conduit{src: src, dst: dst, deliver: deliver}
	if src != dst {
		if src.group == nil || src.group != dst.group {
			panic("sim: conduit endpoints must share a group")
		}
		c.g = src.group
		c.id = len(c.g.conduits)
		c.g.conduits = append(c.g.conduits, c)
	}
	return c
}

// Src returns the source engine.
func (c *Conduit) Src() *Engine { return c.src }

// Dst returns the destination engine.
func (c *Conduit) Dst() *Engine { return c.dst }

// Send schedules frame to arrive at absolute time at. Call it from the
// source shard (or from a control action). The arrival must respect the
// group's lookahead — at least one full window after the current round
// began — which holds by construction when the lookahead is the minimum
// cross-shard link latency.
func (c *Conduit) Send(at Time, frame []byte) {
	if c.src == c.dst {
		d := c.get(frame)
		c.src.push(at, conduitDeliver, d)
		return
	}
	c.out = append(c.out, cmsg{at: at, frame: frame})
}

// get pops a delivery node off the freelist.
func (c *Conduit) get(frame []byte) *dnode {
	d := c.freeD
	if d == nil {
		d = &dnode{c: c}
	} else {
		c.freeD = d.next
		d.next = nil
	}
	d.frame = frame
	return d
}

// mref indexes one buffered message during the barrier merge.
type mref struct {
	c *Conduit
	i int
}

// flush merges every conduit outbox into the destination engines in
// (arrival time, conduit ID, send index) order. That order is a pure
// function of what the shards produced — not of which worker ran them or
// when — so the injected sequence numbers, and every subsequent tie-break,
// are identical in sequential and parallel runs. Runs on the coordinator
// between rounds; uses a reused scratch slice and an insertion sort
// (message counts per barrier are small) so it does not allocate in steady
// state.
func (g *Group) flush() {
	refs := g.refs[:0]
	for _, c := range g.conduits {
		for i := range c.out {
			refs = append(refs, mref{c, i})
		}
	}
	if len(refs) == 0 {
		g.refs = refs
		return
	}
	for i := 1; i < len(refs); i++ {
		r := refs[i]
		ra := r.c.out[r.i].at
		j := i - 1
		for j >= 0 {
			o := refs[j]
			oa := o.c.out[o.i].at
			if oa < ra || (oa == ra && (o.c.id < r.c.id || (o.c.id == r.c.id && o.i < r.i))) {
				break
			}
			refs[j+1] = refs[j]
			j--
		}
		refs[j+1] = r
	}
	for _, r := range refs {
		m := &r.c.out[r.i]
		r.c.dst.push(m.at, conduitDeliver, r.c.get(m.frame))
		m.frame = nil
	}
	for _, c := range g.conduits {
		if len(c.out) > 0 {
			c.out = c.out[:0]
		}
	}
	g.refs = refs[:0]
}
