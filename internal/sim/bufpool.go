package sim

// BufPool recycles packet-payload buffers across the per-packet copy sites
// of the simulator (PCIe completions, NIC CQE writes, descriptor fetches).
// It is size-classed in powers of two from 64 B to 16 KiB, and — like the
// Engine it hangs off — deliberately single-threaded: plain freelists beat
// sync.Pool here because Put([]byte) through an interface boxes the slice
// header (one allocation per recycle, defeating the point) and sync.Pool's
// GC-driven drops would perturb allocation determinism between runs.
//
// Ownership discipline (see DESIGN.md "Simulator performance"): a buffer
// from Get has exactly one owner at a time. Whoever holds it either passes
// ownership onward (e.g. a posted-write payload handed to the PCIe fabric)
// or calls Put exactly once when the buffer goes dead — "free on delivery".
// Shared frames (wire duplication, flooding, retransmission queues) must
// NOT come from the pool. Put clears nothing; callers must not retain
// aliases.
//
// Outstanding (Gets − Puts) is the leak counter: in a quiesced run it
// returns to zero, and telemetry surfaces it (telemetry.RegisterBufPool)
// so leaks show up in snapshots instead of as silent heap growth.
type BufPool struct {
	free [bufClasses][][]byte

	gets, puts uint64
	misses     uint64 // Get found its class empty and allocated
	foreign    uint64 // Put of a buffer whose capacity matches no class
	overflow   uint64 // Put dropped because the class freelist was full
}

const (
	bufMinClass   = 64    // smallest class, bytes
	bufMaxClass   = 16384 // largest class, bytes
	bufClasses    = 9     // 64,128,...,16384
	bufClassDepth = 1024  // per-class freelist bound, buffers
)

// NewBufPool returns an empty pool. Engines create one lazily via
// Engine.Bufs; standalone pools are fine for tests.
func NewBufPool() *BufPool { return &BufPool{} }

// bufClass returns the class index whose buffer capacity is the smallest
// power of two >= n (minimum 64), or -1 if n exceeds the largest class.
func bufClass(n int) int {
	if n > bufMaxClass {
		return -1
	}
	c, size := 0, bufMinClass
	for size < n {
		size <<= 1
		c++
	}
	return c
}

// Get returns a zero-filled-length buffer of length n. Buffers up to 16 KiB
// come from the pool (capacity is the class size); larger requests fall
// through to the allocator but are still counted, so Outstanding stays
// meaningful as long as they are Put back.
func (p *BufPool) Get(n int) []byte {
	p.gets++
	c := bufClass(n)
	if c < 0 {
		p.misses++
		return make([]byte, n)
	}
	if fl := p.free[c]; len(fl) > 0 {
		b := fl[len(fl)-1]
		fl[len(fl)-1] = nil
		p.free[c] = fl[:len(fl)-1]
		return b[:n]
	}
	p.misses++
	return make([]byte, n, bufMinClass<<c)
}

// Put returns a dead buffer to the pool. Only buffers whose capacity is
// exactly a class size are recycled; anything else (including >16 KiB
// fall-through allocations) is released to the GC but still counted, so
// the Outstanding leak counter balances.
func (p *BufPool) Put(b []byte) {
	p.puts++
	c := bufClass(cap(b))
	if c < 0 || bufMinClass<<c != cap(b) {
		p.foreign++
		return
	}
	if len(p.free[c]) >= bufClassDepth {
		p.overflow++
		return
	}
	p.free[c] = append(p.free[c], b[:0])
}

// Outstanding returns Gets − Puts: the number of buffers currently owned by
// callers. A quiesced simulation should read zero; anything else is a leak
// (an owner that dropped its buffer without Put).
func (p *BufPool) Outstanding() int64 { return int64(p.gets) - int64(p.puts) }

// BufPoolStats is a snapshot of the pool's counters.
type BufPoolStats struct {
	Gets     uint64 // buffers handed out
	Puts     uint64 // buffers returned
	Misses   uint64 // Gets that had to allocate
	Foreign  uint64 // Puts whose capacity matched no class (not recycled)
	Overflow uint64 // Puts dropped because the class freelist was full
}

// Stats returns the pool's counters.
func (p *BufPool) Stats() BufPoolStats {
	return BufPoolStats{Gets: p.gets, Puts: p.puts, Misses: p.misses,
		Foreign: p.foreign, Overflow: p.overflow}
}
