package sim

import "testing"

// nopArg is a no-op arg-form callback for heap bookkeeping tests.
func nopArg(any) {}

// TestHeapPopClearsVacatedSlot pins the fix for the popped-event leak:
// pop must zero the vacated tail slot so the backing array does not keep
// the dispatched callback (and everything its closure or arg references)
// reachable until the slot is overwritten by a later push.
func TestHeapPopClearsVacatedSlot(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 8; i++ {
		e.AtArg(Time(i), nopArg, &struct{}{})
	}
	for len(e.events) > 0 {
		e.pop()
		full := e.events[:cap(e.events)]
		vacated := full[len(e.events)]
		if vacated.afn != nil || vacated.arg != nil {
			t.Fatalf("slot %d still holds afn/arg (%v) after pop",
				len(e.events), vacated.arg)
		}
	}
}

// TestHeapShrinkQuarterFull pins the shrink policy: once a drained queue
// falls to a quarter of its backing capacity, pop reallocates at half
// capacity, and it never bothers below shrinkCapMin. A burst therefore
// cannot pin its high-water footprint for the rest of a run.
func TestHeapShrinkQuarterFull(t *testing.T) {
	e := NewEngine()
	const n = 1 << 12
	// Deterministic scramble (LCG) so the drain exercises real sift-downs
	// across the shrink reallocations, not just an already-sorted array.
	x := uint64(1)
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		e.AtArg(Time(x%100_000), nopArg, nil)
	}
	grown := cap(e.events)
	if grown < n {
		t.Fatalf("cap after %d pushes = %d, want >= %d", n, grown, n)
	}

	shrunk := false
	prev := Time(-1)
	prevCap := grown
	for len(e.events) > 0 {
		ev := e.pop()
		if ev.at < prev {
			t.Fatalf("pop order broken across shrink: %v after %v", ev.at, prev)
		}
		prev = ev.at
		if c := cap(e.events); c < prevCap {
			shrunk = true
			if c != prevCap/2 {
				t.Fatalf("shrink went %d -> %d, want halving to %d", prevCap, c, prevCap/2)
			}
			if len(e.events) > prevCap/4 {
				t.Fatalf("shrank at len %d with cap %d, policy is <= cap/4", len(e.events), prevCap)
			}
			prevCap = c
		}
	}
	if !shrunk {
		t.Fatalf("queue drained from cap %d without ever shrinking", grown)
	}
	if c := cap(e.events); c >= 2*shrinkCapMin {
		t.Fatalf("final cap %d, want < %d (shrink runs until cap drops below %d)",
			c, 2*shrinkCapMin, shrinkCapMin)
	}
}

// tickState is the preallocated state for the steady-state alloc tests: a
// self-rescheduling event that re-arms via AfterArg instead of capturing
// anything in a fresh closure.
type tickState struct {
	e        *Engine
	n, limit int
}

func tickRun(a any) {
	s := a.(*tickState)
	s.n++
	if s.n < s.limit {
		s.e.AfterArg(Nanosecond, tickRun, s)
	}
}

// TestEngineSteadyStateZeroAlloc pins the tentpole contract: a
// steady-state scheduler that reschedules a preallocated event through
// AfterArg allocates nothing per event.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	s := &tickState{e: e, limit: 1000}
	avg := testing.AllocsPerRun(10, func() {
		s.n = 0
		e.AfterArg(0, tickRun, s)
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state AfterArg loop: %.1f allocs per %d events, want 0", avg, s.limit)
	}
}

// timerTick re-arms a reusable Timer from its own expiry callback.
type timerTick struct {
	t        *Timer
	n, limit int
}

func timerTickRun(a any) {
	s := a.(*timerTick)
	s.n++
	if s.n < s.limit {
		s.t.Reset(Nanosecond)
	}
}

// TestTimerSteadyStateZeroAlloc pins the reusable-timer contract: Reset
// and expiry of a preallocated Timer allocate nothing per firing.
func TestTimerSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	s := &timerTick{limit: 1000}
	s.t = e.NewTimer(timerTickRun, s)
	avg := testing.AllocsPerRun(10, func() {
		s.n = 0
		s.t.Reset(Nanosecond)
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("Timer Reset/expire loop: %.1f allocs per %d firings, want 0", avg, s.limit)
	}
}

// TestBufPoolRoundTripZeroAlloc pins the pool contract: once a size class
// is warm, a Get/Put round trip allocates nothing.
func TestBufPoolRoundTripZeroAlloc(t *testing.T) {
	p := NewBufPool()
	p.Put(p.Get(512)) // warm the class
	avg := testing.AllocsPerRun(100, func() {
		b := p.Get(512)
		p.Put(b)
	})
	if avg != 0 {
		t.Fatalf("warm Get/Put round trip: %.1f allocs, want 0", avg)
	}
	st := p.Stats()
	if st.Misses != 1 {
		t.Fatalf("Misses = %d after one cold Get, want 1", st.Misses)
	}
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d after balanced round trips, want 0", got)
	}
}
