package flexdriver

import (
	"flexdriver/internal/ethswitch"
	"flexdriver/internal/sim"
)

// Facade re-exports for the switched fabric.
type (
	// EthSwitch is the ToR switch model (internal/ethswitch).
	EthSwitch = ethswitch.Switch
	// SwitchPort is one switch port plus its cable segment.
	SwitchPort = ethswitch.Port
	// SwitchConfig sets the switch's uniform port parameters.
	SwitchConfig = ethswitch.Config
)

// Cluster is the N-node switched testbed: any number of plain hosts and
// Innova nodes racked behind one ToR switch — the topology the paper's
// §9 scaling regime (many clients, multiple FLD cores behind RSS)
// needs. Options fold once at NewCluster and apply to every node;
// telemetry registers each node under its name plus the switch under
// "switch", and a fault plan attaches to every layer of every node and
// to every switch-port link.
type Cluster struct {
	Eng     *Engine
	Hosts   []*Host
	Innovas []*Innova

	o     Options
	swCfg ethswitch.Config
	sw    *ethswitch.Switch
	ports map[*NIC]*ethswitch.Port
}

// NewCluster starts an empty topology; add nodes with AddHost/AddInnova.
func NewCluster(opts ...Option) *Cluster {
	return &Cluster{
		Eng:   sim.NewEngine(),
		o:     buildOptions(opts),
		ports: make(map[*NIC]*ethswitch.Port),
	}
}

// SwitchRate sets the switch's per-port line rate (default 25 Gbps).
func (c *Cluster) SwitchRate(r BitRate) *Cluster {
	c.swCfg.Rate = r
	if c.sw != nil {
		c.sw.SetRate(r)
	}
	return c
}

// SwitchLatency sets the per-segment propagation delay (default 500 ns).
func (c *Cluster) SwitchLatency(d Duration) *Cluster {
	c.swCfg.Latency = d
	if c.sw != nil {
		c.sw.SetLatency(d)
	}
	return c
}

// SwitchQueueFrames bounds each output queue in frames (default 64).
func (c *Cluster) SwitchQueueFrames(n int) *Cluster {
	c.swCfg.QueueFrames = n
	if c.sw != nil {
		c.sw.SetQueueFrames(n)
	}
	return c
}

// Switch returns the ToR switch, creating it on first use.
func (c *Cluster) Switch() *EthSwitch {
	if c.sw == nil {
		c.sw = ethswitch.New(c.Eng, c.swCfg)
		if c.o.Telemetry != nil {
			c.o.Telemetry.Bind(c.Eng.Now)
			c.sw.SetTelemetry(c.o.Telemetry.Scope("switch"))
		}
	}
	return c.sw
}

// PortOf returns the switch port a node's NIC hangs off.
func (c *Cluster) PortOf(n *NIC) *SwitchPort { return c.ports[n] }

// Telemetry returns the registry the cluster was built with, or nil.
func (c *Cluster) Telemetry() *Registry { return c.o.Telemetry }

// AddHost builds a plain host and racks it behind the switch.
func (c *Cluster) AddHost(name string) *Host {
	h := c.buildHost(name)
	c.join(h.NIC)
	return h
}

// AddInnova builds an Innova node and racks it behind the switch.
func (c *Cluster) AddInnova(name string) *Innova {
	inn := c.buildInnova(name)
	c.join(inn.NIC)
	return inn
}

// buildHost constructs a node from the folded carrier without cabling
// it; NewRemotePair uses it to wire its two nodes back to back instead.
func (c *Cluster) buildHost(name string) *Host {
	h := newHost(c.Eng, name, c.o)
	c.Hosts = append(c.Hosts, h)
	return h
}

func (c *Cluster) buildInnova(name string) *Innova {
	inn := newInnova(c.Eng, name, c.o)
	c.Innovas = append(c.Innovas, inn)
	return inn
}

// join cables a NIC to the next switch port and extends the fault plan
// to the new link.
func (c *Cluster) join(n *NIC) {
	port := c.Switch().Connect(n)
	c.ports[n] = port
	if c.o.Faults != nil {
		c.o.Faults.AttachLink(port.Link())
	}
}
