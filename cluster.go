package flexdriver

import (
	"runtime"

	"flexdriver/internal/ethswitch"
	"flexdriver/internal/sim"
)

// Facade re-exports for the switched fabric.
type (
	// EthSwitch is the ToR switch model (internal/ethswitch).
	EthSwitch = ethswitch.Switch
	// SwitchPort is one switch port plus its cable segment.
	SwitchPort = ethswitch.Port
	// SwitchConfig sets the switch's uniform port parameters.
	SwitchConfig = ethswitch.Config
)

// Cluster is the N-node switched testbed: any number of plain hosts and
// Innova nodes racked behind one ToR switch — the topology the paper's
// §9 scaling regime (many clients, multiple FLD cores behind RSS)
// needs. Options fold once at NewCluster and apply to every node;
// telemetry registers each node under its name plus the switch under
// "switch", and a fault plan attaches to every layer of every node and
// to every switch-port link.
//
// Each node owns a private shard engine; the switch fabric is a shard of
// its own, and the only cross-shard paths are the port conduits, whose
// propagation delay is the scheduler's lookahead. Run and RunUntil drive
// all shards through the group's conservative parallel scheduler —
// byte-identical to the sequential schedule at any worker count.
type Cluster struct {
	Hosts   []*Host
	Innovas []*Innova

	group  *sim.Group
	o      Options
	swCfg  ethswitch.Config
	sw     *ethswitch.Switch
	ports  map[*NIC]*ethswitch.Port
	shared *sim.Engine // the single engine under WithColocated

	// Tenancy control plane: per-node managers plus the cluster's
	// current desired-state spec (see tenancy.go).
	tms     []*TenantManager
	tenancy TenancySpec
}

// NewCluster starts an empty topology; add nodes with AddHost/AddInnova.
func NewCluster(opts ...Option) *Cluster {
	c := &Cluster{
		group: sim.NewGroup(),
		o:     buildOptions(opts),
		ports: make(map[*NIC]*ethswitch.Port),
	}
	// Lookahead = the per-segment switch latency (ethswitch's default
	// until SwitchLatency overrides it): no frame crosses shards faster
	// than one segment's propagation delay.
	c.group.SetLookahead(500 * Nanosecond)
	// The group clock is the cluster's time authority. Bind is
	// first-wins, so binding here keeps any node's per-shard clock from
	// claiming the registry.
	if c.o.Telemetry != nil {
		c.o.Telemetry.Bind(c.group.Now)
	}
	return c
}

// SwitchRate sets the switch's per-port line rate (default 25 Gbps).
func (c *Cluster) SwitchRate(r BitRate) *Cluster {
	c.swCfg.Rate = r
	if c.sw != nil {
		c.sw.SetRate(r)
	}
	return c
}

// SwitchLatency sets the per-segment propagation delay (default 500 ns)
// and with it the scheduler's lookahead.
func (c *Cluster) SwitchLatency(d Duration) *Cluster {
	c.swCfg.Latency = d
	if d == 0 {
		d = 500 * Nanosecond // ethswitch treats 0 as "use the default"
	}
	c.group.SetLookahead(d)
	if c.sw != nil {
		c.sw.SetLatency(c.swCfg.Latency)
	}
	return c
}

// SwitchQueueFrames bounds each output queue in frames (default 64).
func (c *Cluster) SwitchQueueFrames(n int) *Cluster {
	c.swCfg.QueueFrames = n
	if c.sw != nil {
		c.sw.SetQueueFrames(n)
	}
	return c
}

// shardEngine returns the engine for the next node or the switch: a
// fresh shard normally, the cluster's one shared engine under
// WithColocated (conduits between identical engines degenerate to
// direct scheduling, so a fully colocated cluster has no cross-shard
// paths at all and the group runs it monolithically).
func (c *Cluster) shardEngine() *sim.Engine {
	if !c.o.Colocate {
		return c.group.NewEngine()
	}
	if c.shared == nil {
		c.shared = c.group.NewEngine()
	}
	return c.shared
}

// Switch returns the ToR switch, creating it (and its shard engine) on
// first use.
func (c *Cluster) Switch() *EthSwitch {
	if c.sw == nil {
		c.sw = ethswitch.New(c.shardEngine(), c.swCfg)
		if c.o.Telemetry != nil {
			c.sw.SetTelemetry(c.o.Telemetry.Scope("switch"))
		}
		if c.o.Faults != nil {
			c.o.Faults.AttachSwitchReboot(c.sw.Engine(), c.sw)
		}
	}
	return c.sw
}

// PortOf returns the switch port a node's NIC hangs off.
func (c *Cluster) PortOf(n *NIC) *SwitchPort { return c.ports[n] }

// Telemetry returns the registry the cluster was built with, or nil.
func (c *Cluster) Telemetry() *Registry { return c.o.Telemetry }

// Group exposes the underlying scheduler group — the escape hatch for
// invariant sweeps (per-shard Pending/Bufs) and scheduler tuning.
func (c *Cluster) Group() *sim.Group { return c.group }

// Engines returns every shard engine in creation order (nodes, then the
// switch if one exists).
func (c *Cluster) Engines() []*Engine { return c.group.Engines() }

// Now returns the cluster's virtual time: exact after Run/RunUntil
// return, when every shard has synchronized.
func (c *Cluster) Now() Time { return c.group.Now() }

// Control schedules fn at cluster time t on the coordinator: every
// shard is quiesced past t and advanced to t before fn runs, so fn may
// read or mutate any node. Controls are the cluster-wide analogue of
// Engine.At; per-node work belongs on the node's own engine.
func (c *Cluster) Control(t Time, fn func()) { c.group.Control(t, fn) }

// Pending returns the number of undelivered events across all shards,
// in-flight cross-shard frames included.
func (c *Cluster) Pending() int { return c.group.Pending() }

// Run drives every shard until the cluster is idle.
func (c *Cluster) Run() {
	c.prepare()
	c.group.Run()
}

// RunUntil drives every shard through deadline (inclusive), then
// advances all clocks to it.
func (c *Cluster) RunUntil(deadline Time) {
	c.prepare()
	c.group.RunUntil(deadline)
}

// prepare resolves the worker count just before a run: 0 means one
// worker per CPU; the TLP flight recorder — a single unlocked ring
// buffer — forces the (identical) sequential schedule.
func (c *Cluster) prepare() {
	w := c.o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if c.o.Telemetry != nil && c.o.Telemetry.Recorder() != nil {
		w = 1
	}
	c.group.SetWorkers(w)
}

// AddHost builds a plain host on its own shard and racks it behind the
// switch.
func (c *Cluster) AddHost(name string) *Host {
	h := c.buildHost(name)
	c.join(h.NIC)
	return h
}

// AddInnova builds an Innova node on its own shard and racks it behind
// the switch.
func (c *Cluster) AddInnova(name string) *Innova {
	inn := c.buildInnova(name)
	c.join(inn.NIC)
	return inn
}

// buildHost constructs a node on a fresh shard without cabling it;
// NewRemotePair instead colocates its two nodes via buildHostOn.
func (c *Cluster) buildHost(name string) *Host {
	return c.buildHostOn(c.shardEngine(), name)
}

func (c *Cluster) buildHostOn(eng *Engine, name string) *Host {
	h := newHost(eng, name, c.o)
	h.cl = c
	c.Hosts = append(c.Hosts, h)
	return h
}

func (c *Cluster) buildInnova(name string) *Innova {
	return c.buildInnovaOn(c.shardEngine(), name)
}

func (c *Cluster) buildInnovaOn(eng *Engine, name string) *Innova {
	inn := newInnova(eng, name, c.o)
	inn.cl = c
	c.Innovas = append(c.Innovas, inn)
	return inn
}

// join cables a NIC to the next switch port and extends the fault plan
// to the new link — one stream per direction, each on the shard whose
// hooks consume it.
func (c *Cluster) join(n *NIC) {
	port := c.Switch().Connect(n)
	c.ports[n] = port
	if c.o.Faults != nil {
		c.o.Faults.AttachLink(port.Link(), port.EndpointEngine(), c.sw.Engine())
	}
}
