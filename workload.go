package flexdriver

import (
	"fmt"

	"flexdriver/internal/sim"
	"flexdriver/internal/swdriver"
	"flexdriver/internal/telemetry"
)

// ClientSetup describes one modeled client inside an AggregatedClients
// source: its flow templates (round-robined), the mean inter-tick gap
// before burst scaling, and the burst length (0 or 1 = Poisson single
// frames, >1 = back-to-back trains at the same mean rate).
type ClientSetup struct {
	Flows [][]byte
	Mean  Duration
	Burst int
}

// AggregatedClientsConfig configures one aggregated traffic source.
type AggregatedClientsConfig struct {
	// Clients is K, the number of open-loop clients this source folds
	// into a single event-driven sender. Cost is O(frames): the source
	// keeps one pending engine event (the earliest client's next tick)
	// over an internal next-arrival heap, not one timer per client.
	Clients int
	// StreamSeed seeds client ci's private arrival stream as
	// NewRand(StreamSeed + ci) — the same one-stream-per-client shape
	// the discrete experiments use, which is what makes a K-aggregated
	// source send the exact frames at the exact times K discrete
	// clients would. Callers splitting one logical population over
	// several hosts pass StreamSeed = base + firstGlobalIndex so every
	// client keeps the stream it would own as a discrete host.
	StreamSeed int64
	// Setup is called once per client at construction, in client order,
	// with the carrying host (frames need its NIC addresses) and the
	// client's already-seeded arrival rng. Draws it makes (burst
	// lengths, flow sizes from its own streams) land before the
	// client's first inter-arrival draw, matching the discrete loops.
	Setup func(h *Host, client int, rng *sim.Rand) ClientSetup
	// OnSend observes each frame copy just before it is posted —
	// sequence stamping, RTT bookkeeping. The client index is the
	// source-local one; add the host's base for a global ordinal.
	OnSend func(client int, frame []byte)
	// Stop is the cutoff: a client whose tick fires at or after Stop
	// sends nothing more, exactly like the discrete senders' stop
	// check. Required.
	Stop Time
	// TxEntries/RxEntries size the host's EthPort (default 512 each).
	TxEntries, RxEntries int
	// Rand constructs client ci's arrival rng from StreamSeed+ci (nil =
	// sim.NewRand, the stream every pre-existing workload pins).
	// Population-scale sources (10^5 modeled connections) pass
	// sim.NewLightRand: same determinism, ~600x less state per client.
	Rand func(seed int64) *sim.Rand
}

// AggregatedClients models K open-loop clients as one event-driven
// source on a single host: per-client Poisson or bursty arrival
// streams, per-client flow sets with distinct tags for RSS spread and
// telemetry attribution, superposed through an internal next-arrival
// heap so a "512-client" host costs one engine event per frame train —
// not 512 engines, goroutines, or timer entries.
//
// Determinism: with StreamSeed laid out as the discrete experiments
// seed their per-client rngs, the aggregated source emits byte- and
// time-identical offered load (the equivalence the exps test pins).
type AggregatedClients struct {
	Host *Host
	Port *EthPort

	cfg  AggregatedClientsConfig
	eng  *sim.Engine
	cs   []aggClient
	heap []int32 // client indices ordered by (next tick, index)
	stop Time

	frames, bytes *telemetry.Counter // nil without telemetry
}

// aggClient is one modeled client's arrival state.
type aggClient struct {
	next  Time
	gap   Duration
	rng   *sim.Rand
	flows [][]byte
	burst int
	fi    int64 // round-robin flow cursor == frames sent
}

// AddAggregatedClients builds one host carrying an aggregated source:
// the host, an EthPort sized per the config, an own-IP steering rule
// into its RQ, and the K client streams, first ticks already drawn and
// scheduled. Receive-side handling stays with the caller via
// src.Port.OnReceive.
func (c *Cluster) AddAggregatedClients(name string, cfg AggregatedClientsConfig) *AggregatedClients {
	h := c.AddHost(name)
	return AttachAggregatedClients(h, cfg)
}

// AttachAggregatedClients installs an aggregated source on an existing
// host (AddAggregatedClients is the usual entry; this is for callers
// that steer or rack the host themselves before attaching).
func AttachAggregatedClients(h *Host, cfg AggregatedClientsConfig) *AggregatedClients {
	if cfg.Clients <= 0 {
		panic("flexdriver: AggregatedClientsConfig.Clients must be positive")
	}
	if cfg.Stop <= 0 {
		panic("flexdriver: AggregatedClientsConfig.Stop must be set")
	}
	if cfg.Setup == nil {
		panic("flexdriver: AggregatedClientsConfig.Setup is required")
	}
	if cfg.TxEntries == 0 {
		cfg.TxEntries = 512
	}
	if cfg.RxEntries == 0 {
		cfg.RxEntries = 512
	}
	port := h.Drv.NewEthPort(swdriver.EthPortConfig{
		TxEntries: cfg.TxEntries, RxEntries: cfg.RxEntries})
	ip := h.NIC.IP
	h.NIC.ESwitch().AddRule(0, Rule{
		Match:  Match{DstIP: &ip},
		Action: Action{ToRQ: port.RQ()}})

	s := &AggregatedClients{
		Host: h, Port: port, cfg: cfg, eng: h.Engine(), stop: cfg.Stop,
		cs:   make([]aggClient, 0, cfg.Clients),
		heap: make([]int32, 0, cfg.Clients),
	}
	if reg := h.Telemetry(); reg != nil {
		sc := reg.Scope(h.Name()).Scope("clients")
		sc.Gauge("modeled").Set(int64(cfg.Clients))
		s.frames = sc.Counter("frames")
		s.bytes = sc.Counter("bytes")
	}
	newRand := cfg.Rand
	if newRand == nil {
		newRand = sim.NewRand
	}
	now := s.eng.Now()
	for ci := 0; ci < cfg.Clients; ci++ {
		rng := newRand(cfg.StreamSeed + int64(ci))
		set := cfg.Setup(h, ci, rng)
		if len(set.Flows) == 0 {
			panic(fmt.Sprintf("flexdriver: aggregated client %d has no flows", ci))
		}
		burst := set.Burst
		if burst < 1 {
			burst = 1
		}
		gap := set.Mean * Duration(burst)
		cl := aggClient{rng: rng, flows: set.Flows, burst: burst, gap: gap}
		cl.next = now + rng.Exp(gap)
		s.cs = append(s.cs, cl)
		s.heap = append(s.heap, int32(ci))
		s.siftUp(ci)
	}
	s.eng.AtArg(s.cs[s.heap[0]].next, aggFire, s)
	return s
}

// Clients returns K, the number of modeled clients.
func (s *AggregatedClients) Clients() int { return len(s.cs) }

// Sent returns the number of frames client ci has sent so far.
func (s *AggregatedClients) Sent(ci int) int64 { return s.cs[ci].fi }

// TotalSent returns the frames sent across all modeled clients.
func (s *AggregatedClients) TotalSent() int64 {
	var n int64
	for i := range s.cs {
		n += s.cs[i].fi
	}
	return n
}

// aggFire is the source's single recurring engine event: the earliest
// client ticks (sends its burst, redraws its next arrival), the heap
// re-orders, and the event reschedules at the new minimum. When the
// minimum reaches the stop line every client is at or past it — the
// same per-client cutoff the discrete senders apply — so the source
// quiesces by simply not rescheduling.
func aggFire(a any) {
	s := a.(*AggregatedClients)
	now := s.eng.Now()
	if now >= s.stop {
		return
	}
	ci := s.heap[0]
	c := &s.cs[ci]
	for b := 0; b < c.burst; b++ {
		f := append([]byte(nil), c.flows[int(c.fi)%len(c.flows)]...)
		c.fi++
		if s.cfg.OnSend != nil {
			s.cfg.OnSend(int(ci), f)
		}
		if s.frames != nil {
			s.frames.Inc()
			s.bytes.Add(int64(len(f)))
		}
		s.Port.Send(f)
	}
	c.next = now + c.rng.Exp(c.gap)
	s.siftDown(0)
	s.eng.AtArg(s.cs[s.heap[0]].next, aggFire, s)
}

// aggLess orders heap slots by (next tick, client index) — the index
// tie-break makes same-instant ticks fire in client order, keeping the
// superposition deterministic.
func (s *AggregatedClients) aggLess(a, b int32) bool {
	ca, cb := &s.cs[a], &s.cs[b]
	return ca.next < cb.next || (ca.next == cb.next && a < b)
}

func (s *AggregatedClients) siftUp(i int) {
	h := s.heap
	for i > 0 {
		p := (i - 1) / 2
		if !s.aggLess(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (s *AggregatedClients) siftDown(i int) {
	h := s.heap
	n := len(h)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && s.aggLess(h[c+1], h[c]) {
			c++
		}
		if !s.aggLess(h[c], h[i]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}
