module flexdriver

go 1.22
