package flexdriver

import (
	"fmt"
	"strings"
	"testing"

	"flexdriver/internal/netpkt"
	"flexdriver/internal/nic"
	"flexdriver/internal/swdriver"
)

// swapUDPFrame reverses a UDP frame in place (Ethernet addresses, IPv4
// addresses, UDP ports) so an echo reply is addressed to its sender and
// routes back through the switch instead of hairpinning.
func swapUDPFrame(f []byte) {
	for i := 0; i < 6; i++ {
		f[i], f[6+i] = f[6+i], f[i]
	}
	for i := 0; i < 4; i++ {
		f[26+i], f[30+i] = f[30+i], f[26+i]
	}
	f[34], f[36] = f[36], f[34]
	f[35], f[37] = f[37], f[35]
}

// clusterUDPFrame builds a UDP frame between two racked NICs.
func clusterUDPFrame(src, dst *NIC, sport, dport uint16, size int) []byte {
	n := size - netpkt.EthHeaderLen - netpkt.IPv4HeaderLen - netpkt.UDPHeaderLen
	payload := make([]byte, n)
	udp := netpkt.UDP{SrcPort: sport, DstPort: dport, Length: uint16(netpkt.UDPHeaderLen + n)}
	l4 := append(udp.Marshal(nil), payload...)
	ip := netpkt.IPv4{TotalLen: uint16(netpkt.IPv4HeaderLen + len(l4)), Proto: netpkt.ProtoUDP,
		Src: src.IP, Dst: dst.IP}
	l3 := append(ip.Marshal(nil), l4...)
	eth := netpkt.Eth{Dst: dst.MAC, Src: src.MAC, EtherType: netpkt.EtherTypeIPv4}
	return append(eth.Marshal(nil), l3...)
}

// TestClusterEchoSmoke races two clients against a dual-FLD server
// behind the ToR switch — the smallest instance of the §9 scale-out
// topology. Every frame must come back to the client that sent it, RSS
// must touch both cores, and the switch must learn all three stations.
func TestClusterEchoSmoke(t *testing.T) {
	cl := NewCluster()
	srv := cl.AddInnova("server")
	_, rt2 := srv.AddFLD(srv.FLD.Config())

	var rqs []*nic.RQ
	for _, rt := range []*Runtime{srv.RT, rt2} {
		rt.CreateEthTxQueue(0, nil)
		ecp := NewEControlPlane(rt)
		ecp.InstallDefaultEgressToWire()
		rt.Start()
		f := rt.FLD()
		f.SetHandler(HandlerFunc(func(data []byte, md Metadata) {
			out := append([]byte(nil), data...)
			swapUDPFrame(out)
			if err := f.Send(0, out, md); err != nil {
				t.Errorf("fld send: %v", err)
			}
		}))
		rqs = append(rqs, rt.RQ())
	}
	srv.NIC.ESwitch().AddRule(0, Rule{Action: Action{ToTIR: &nic.TIR{RQs: rqs}}})

	const clients = 2
	const perClient = 120
	const frameSize = 512
	received := make([]int, clients)
	for ci := 0; ci < clients; ci++ {
		h := cl.AddHost(fmt.Sprintf("client%d", ci))
		if cl.PortOf(h.NIC) == nil {
			t.Fatalf("client%d has no switch port", ci)
		}
		port := h.Drv.NewEthPort(swdriver.EthPortConfig{TxEntries: 256, RxEntries: 256})
		ip := h.NIC.IP
		h.NIC.ESwitch().AddRule(0, Rule{Match: Match{DstIP: &ip}, Action: Action{ToRQ: port.RQ()}})
		ci := ci
		port.OnReceive = func([]byte, swdriver.RxMeta) { received[ci]++ }

		// Two flows per RSS bucket so both cores see this client.
		per := 2
		count := make([]int, len(rqs))
		var frames [][]byte
		for sport := uint16(4000); len(frames) < per*len(rqs) && sport < 60000; sport++ {
			f := clusterUDPFrame(h.NIC, srv.NIC, sport, 7777, frameSize)
			if b := int(netpkt.RSSHash(f)) % len(rqs); count[b] < per {
				count[b]++
				frames = append(frames, f)
			}
		}
		// 4 Gbit/s per client (512 B / 1.024 us): well under the server
		// port, so the bounded switch queues must not drop anything.
		interval := 1024 * Nanosecond
		heng := h.Engine()
		sent := 0
		var tick func()
		tick = func() {
			if sent >= perClient {
				return
			}
			port.Send(frames[sent%len(frames)])
			sent++
			heng.After(interval, tick)
		}
		heng.After(Duration(ci)*interval/clients, tick)
	}
	cl.Run()

	for ci, got := range received {
		if got != perClient {
			t.Errorf("client%d received %d echoes, want %d (switch stats %+v)",
				ci, got, perClient, cl.Switch().Stats)
		}
	}
	rx1, rx2 := srv.RT.FLD().Stats.RxPackets, rt2.FLD().Stats.RxPackets
	if rx1 == 0 || rx2 == 0 || rx1+rx2 != clients*perClient {
		t.Errorf("per-FLD rx = %d/%d, want both cores busy summing to %d", rx1, rx2, clients*perClient)
	}
	if n := cl.Switch().FDBSize(); n != clients+1 {
		t.Errorf("switch learned %d stations, want %d", n, clients+1)
	}
	var drops int64
	for _, p := range cl.Switch().Ports() {
		drops += p.Counters.TailDrops
	}
	if drops != 0 {
		t.Errorf("switch tail-dropped %d frames at an uncongested load", drops)
	}
	if pending := cl.Pending(); pending != 0 {
		t.Errorf("engine left %d events pending after Run", pending)
	}
}

// TestAddFLDUsesConfiguredLink pins the regression where AddFLD attached
// extra cores with the hardcoded Gen3x8 default instead of the node's
// configured PCIe link.
func TestAddFLDUsesConfiguredLink(t *testing.T) {
	link := Gen3x8()
	link.Lanes = 16
	inn := NewLocalInnova(WithLink(link))
	f2, _ := inn.AddFLD(inn.FLD.Config())

	if got := inn.Fab.PortOf(inn.FLD).Config(); got.Lanes != link.Lanes {
		t.Fatalf("built-in core link has %d lanes, want %d", got.Lanes, link.Lanes)
	}
	if got := inn.Fab.PortOf(f2).Config(); got != inn.Fab.PortOf(inn.FLD).Config() {
		t.Fatalf("AddFLD link %+v differs from the node's configured link %+v",
			got, inn.Fab.PortOf(inn.FLD).Config())
	}
}

// TestAddFLDTelemetryAndFaults verifies that an added core lands in the
// node's registry under its own fld<N>/pcie scopes and that the node's
// fault plan extends to it.
func TestAddFLDTelemetryAndFaults(t *testing.T) {
	reg := NewRegistry()
	plan := NewFaultPlan(1, FaultsConfig{AccelStall: 1.0})
	inn := NewLocalInnova(WithTelemetry(reg), WithFaults(plan))
	_, rt2 := inn.AddFLD(inn.FLD.Config())
	rt2.CreateEthTxQueue(0, nil)

	// Hairpin the host port into the added core (cf. TestFLDELocalEcho).
	port := inn.Drv.NewEthPort(swdriver.EthPortConfig{TxEntries: 64, RxEntries: 64})
	esw := inn.NIC.ESwitch()
	fldVP := rt2.VPort()
	hostVP := port.VPort()
	esw.ClearTable(hostVP.EgressTable)
	esw.AddRule(hostVP.EgressTable, Rule{Action: Action{ToVPort: &fldVP.ID}})
	esw.AddRule(fldVP.IngressTable, Rule{Action: Action{ToRQ: rt2.RQ()}})
	rt2.Start()

	const n = 20
	frame := buildUDPFrame(1, 1, 9, 10, 512)
	for i := 0; i < n; i++ {
		port.Send(frame)
	}
	inn.Run()

	// The plan's accelerator hook must have fired on the added core:
	// AccelStall=1 swallows every delivered frame.
	if plan.Injected.AccelStalls != n {
		t.Fatalf("AccelStalls = %d, want %d", plan.Injected.AccelStalls, n)
	}
	// The added core registers under its own scopes, separate from the
	// built-in core's innova/fld and innova/pcie/fld paths.
	snap := reg.Snapshot()
	fld1, pcie1 := false, false
	for p := range snap.Counters {
		if strings.HasPrefix(p, "innova/fld1/") {
			fld1 = true
		}
		if strings.HasPrefix(p, "innova/pcie/fld1/") {
			pcie1 = true
		}
	}
	if !fld1 || !pcie1 {
		t.Fatalf("missing added-core scopes: innova/fld1/=%v innova/pcie/fld1/=%v", fld1, pcie1)
	}
	checkFabricReconciles(t, snap, "innova", inn.Fab)
}
