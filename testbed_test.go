package flexdriver

import (
	"bytes"
	"testing"

	"flexdriver/internal/accel/echo"
	"flexdriver/internal/netpkt"
	"flexdriver/internal/swdriver"
)

func buildUDPFrame(srcID, dstID int, sport, dport uint16, n int) []byte {
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	udp := netpkt.UDP{SrcPort: sport, DstPort: dport, Length: uint16(netpkt.UDPHeaderLen + n)}
	l4 := append(udp.Marshal(nil), payload...)
	ip := netpkt.IPv4{TotalLen: uint16(netpkt.IPv4HeaderLen + len(l4)), Proto: netpkt.ProtoUDP,
		Src: netpkt.IPFrom(srcID), Dst: netpkt.IPFrom(dstID)}
	l3 := append(ip.Marshal(nil), l4...)
	eth := netpkt.Eth{Dst: netpkt.MACFrom(dstID), Src: netpkt.MACFrom(srcID), EtherType: netpkt.EtherTypeIPv4}
	return append(eth.Marshal(nil), l3...)
}

// TestFLDERemoteEcho is the repository's flagship integration test: the
// paper's §8.1.1 topology end to end. A client host generates frames with
// the software driver; the server NIC steers them through the eSwitch to
// FLD; the echo AFU bounces them; FLD drives the NIC's transmit path over
// peer-to-peer PCIe; frames return to the client — with zero server-CPU
// involvement after setup.
func TestFLDERemoteEcho(t *testing.T) {
	rp := NewRemotePair()
	srv := rp.Server

	// Server control plane: one FLD TX queue, default egress to wire,
	// ingress steering of all client traffic into the accelerator.
	srv.RT.CreateEthTxQueue(0, nil)
	ecp := NewEControlPlane(srv.RT)
	ecp.InstallDefaultEgressToWire()
	srv.NIC.ESwitch().AddRule(0, Rule{Action: Action{ToRQ: srv.RT.RQ()}})
	srv.RT.Start()
	afu := echo.New(srv.FLD)

	// Client: software port; steer returning traffic to its RQ.
	port := rp.Client.Drv.NewEthPort(swdriver.EthPortConfig{TxEntries: 256, RxEntries: 256})
	rp.Client.NIC.ESwitch().AddRule(0, Rule{Action: Action{ToRQ: port.RQ()}})

	var received [][]byte
	port.OnReceive = func(frame []byte, md swdriver.RxMeta) {
		received = append(received, frame)
	}

	const n = 100
	frame := buildUDPFrame(1, 2, 4000, 7777, 512)
	for i := 0; i < n; i++ {
		port.Send(frame)
	}
	rp.Run()

	if afu.Echoed != n {
		t.Fatalf("AFU echoed %d, want %d (dropped %d, server drops %v)",
			afu.Echoed, n, afu.Dropped, srv.NIC.Stats.Drops)
	}
	if len(received) != n {
		t.Fatalf("client received %d, want %d (client drops %v)",
			len(received), n, rp.Client.NIC.Stats.Drops)
	}
	for _, f := range received {
		if !bytes.Equal(f, frame) {
			t.Fatal("echoed frame corrupted")
		}
	}
	// The server host CPU must not have touched the data path.
	if srv.Drv.RxPackets != 0 || srv.Drv.TxPackets != 0 {
		t.Fatal("server CPU participated in the data path")
	}
	if srv.FLD.Stats.RxPackets != n || srv.FLD.Stats.TxPackets != n {
		t.Fatalf("FLD stats: %+v", srv.FLD.Stats)
	}
}

// TestFLDELocalEcho runs the single-node variant: the host CPU exchanges
// traffic with the FPGA through the eSwitch hairpin.
func TestFLDELocalEcho(t *testing.T) {
	inn := NewLocalInnova()
	inn.RT.CreateEthTxQueue(0, nil)
	echoAFU := echo.New(inn.FLD)

	// Host software port, steering: host egress -> FLD's RQ (hairpin via
	// vport), FLD egress -> host port's RQ.
	port := inn.Drv.NewEthPort(swdriver.EthPortConfig{TxEntries: 256, RxEntries: 256})
	esw := inn.NIC.ESwitch()
	fldVP := inn.RT.VPort()
	hostVP := port.VPort()
	esw.ClearTable(hostVP.EgressTable)
	esw.AddRule(hostVP.EgressTable, Rule{Action: Action{ToVPort: &fldVP.ID}})
	esw.AddRule(fldVP.IngressTable, Rule{Action: Action{ToRQ: inn.RT.RQ()}})
	esw.AddRule(fldVP.EgressTable, Rule{Action: Action{ToVPort: &hostVP.ID}})
	esw.AddRule(hostVP.IngressTable, Rule{Action: Action{ToRQ: port.RQ()}})
	inn.RT.Start()

	got := 0
	port.OnReceive = func(frame []byte, md swdriver.RxMeta) { got++ }

	const n = 64
	frame := buildUDPFrame(1, 1, 9, 10, 1024)
	for i := 0; i < n; i++ {
		port.Send(frame)
	}
	inn.Run()

	if echoAFU.Echoed != n || got != n {
		t.Fatalf("echoed=%d received=%d want %d (drops %v, fld %+v)",
			echoAFU.Echoed, got, n, inn.NIC.Stats.Drops, inn.FLD.Stats)
	}
}

// TestFLDRRemoteEcho exercises the FLD-R path: a client RDMA endpoint
// connects to an FLD-R service; messages larger than the MTU are segmented
// by the client NIC's transport, reassembled... no — delivered per packet
// to the AFU, echoed per message back over the FLD QP, and reassembled by
// the client endpoint.
func TestFLDRRemoteEcho(t *testing.T) {
	rp := NewRemotePair()
	srv := rp.Server

	rsrv := NewRServer(srv.RT)
	rsrv.Listen("echo")
	srv.RT.Start()

	// Echo AFU for FLD-R: reassemble per-packet deliveries and send the
	// full message back on the FLD queue bound to the arriving QP.
	var cur []byte
	srv.FLD.SetHandler(HandlerFunc(func(data []byte, md Metadata) {
		cur = append(cur, data...)
		if md.Last {
			msg := cur
			cur = nil
			q := rsrv.QueueFor(md.Tag)
			if err := srv.FLD.Send(q, msg, Metadata{}); err != nil {
				t.Errorf("fld send: %v", err)
			}
		}
	}))

	ep, err := ConnectRDMA(rp.Client.Drv, rsrv, "echo", RDMAConfig{SendEntries: 64, RecvEntries: 64})
	if err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	ep.OnMessage = func(data []byte) { got = append(got, data) }

	msgs := [][]byte{
		bytes.Repeat([]byte{0xA1}, 100),
		bytes.Repeat([]byte{0xB2}, 2048), // > MTU: segmented in hardware
		bytes.Repeat([]byte{0xC3}, 5000),
	}
	for _, m := range msgs {
		ep.Send(m)
	}
	rp.Run()

	if len(got) != len(msgs) {
		t.Fatalf("received %d messages, want %d (drops client=%v server=%v)",
			len(got), len(msgs), rp.Client.NIC.Stats.Drops, srv.NIC.Stats.Drops)
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}
