package flexdriver

import (
	"testing"
)

func tenancyTestSpec() TenancySpec {
	return TenancySpec{Version: 1, Tenants: []TenantSpec{
		{Name: "alpha", VFs: 1, Cores: 1, SQs: 2, RQs: 1, CQs: 2, Weight: 2, RateGbps: 10},
		{Name: "beta", VFs: 2, Cores: 2, SQs: 2, RQs: 1, CQs: 2, Weight: 1},
	}}
}

func TestTenantManagerConverges(t *testing.T) {
	reg := NewRegistry()
	inn := NewLocalInnova(WithTelemetry(reg))
	tm := NewTenantManager(inn, 7)
	if err := tm.Apply(tenancyTestSpec()); err != nil {
		t.Fatal(err)
	}
	inn.Run()
	if !tm.Reconciler().Converged() {
		t.Fatal("node did not converge")
	}
	if got := len(tm.VFs("alpha")); got != 1 {
		t.Fatalf("alpha has %d VFs, want 1", got)
	}
	if got := len(tm.Runtimes("beta")); got != 2 {
		t.Fatalf("beta has %d runtimes, want 2", got)
	}
	// beta's two runtimes round-robin across its two VFs.
	rts := tm.Runtimes("beta")
	if rts[0].VF() == rts[1].VF() {
		t.Fatal("beta's runtimes share a VF; want round-robin placement")
	}
	// The partition ledger agrees with the actuation.
	if got := len(tm.Partition().Cores("beta")); got != 2 {
		t.Fatalf("partition shows %d beta cores, want 2", got)
	}
	// Actuated shapes are mirrored into the telemetry tree.
	snap := reg.Snapshot()
	if v := snap.Gauges["innova/ctrlplane/tenant/alpha/cores"].Value; v != 1 {
		t.Fatalf("alpha cores gauge = %d, want 1", v)
	}
	if v := snap.Gauges["innova/ctrlplane/tenant/beta/vfs"].Value; v != 2 {
		t.Fatalf("beta vfs gauge = %d, want 2", v)
	}
	if v := snap.Gauges["innova/ctrlplane/tenant/alpha/rate_mbps"].Value; v != 10000 {
		t.Fatalf("alpha rate gauge = %d, want 10000", v)
	}
}

func TestTenantManagerLiveReshapeAndRemove(t *testing.T) {
	inn := NewLocalInnova()
	tm := NewTenantManager(inn, 7)
	if err := tm.Apply(tenancyTestSpec()); err != nil {
		t.Fatal(err)
	}
	inn.Run()
	alphaVF := tm.VFs("alpha")[0]
	betaCores := tm.Cores("beta")

	// v2: bandwidth-only change for alpha (re-slices the live VF, same
	// queues), structural shrink for beta (rebuild on fresh VFs).
	s := tenancyTestSpec()
	s.Version = 2
	s.Tenants[0].Weight = 5
	s.Tenants[0].RateGbps = 4
	s.Tenants[1].Cores = 1
	s.Tenants[1].VFs = 1
	if err := tm.Apply(s); err != nil {
		t.Fatal(err)
	}
	inn.Run()
	if !tm.Reconciler().Converged() {
		t.Fatal("did not converge after reshape")
	}
	if tm.VFs("alpha")[0] != alphaVF {
		t.Fatal("bandwidth-only change rebuilt alpha's VF")
	}
	if alphaVF.Weight() != 5 {
		t.Fatalf("alpha VF weight = %d, want 5", alphaVF.Weight())
	}
	if got := len(tm.Cores("beta")); got != 1 {
		t.Fatalf("beta has %d cores after shrink, want 1", got)
	}

	// v3: remove beta entirely; its core returns to the free pool and is
	// reused when a new tenant arrives.
	s2 := TenancySpec{Version: 3, Tenants: []TenantSpec{s.Tenants[0]}}
	if err := tm.Apply(s2); err != nil {
		t.Fatal(err)
	}
	inn.Run()
	if tm.Runtimes("beta") != nil {
		t.Fatal("beta still actuated after removal")
	}
	if got := len(tm.Partition().Tenants()); got != 1 {
		t.Fatalf("partition still holds %d tenants, want 1", got)
	}

	s3 := s2
	s3.Version = 4
	s3.Tenants = append(append([]TenantSpec(nil), s2.Tenants...),
		TenantSpec{Name: "gamma", VFs: 1, Cores: 1, SQs: 2, RQs: 1, CQs: 2, Weight: 1})
	if err := tm.Apply(s3); err != nil {
		t.Fatal(err)
	}
	inn.Run()
	if !tm.Reconciler().Converged() {
		t.Fatal("did not converge after gamma")
	}
	reused := false
	for _, f := range betaCores {
		if len(tm.Cores("gamma")) == 1 && tm.Cores("gamma")[0] == f {
			reused = true
		}
	}
	if !reused {
		t.Fatal("gamma did not reuse a released core")
	}
	if n := inn.NumFLDs(); n != 4 {
		// 1 PF core + alpha's 1 + beta's peak of 2; gamma reuses.
		t.Fatalf("node carries %d FLD cores, want 4", n)
	}
}

func TestTenantManagerInfeasibleSpecAbandons(t *testing.T) {
	reg := NewRegistry()
	inn := NewLocalInnova(WithTelemetry(reg))
	tm := NewTenantManager(inn, 7)
	// One core needs two CQs on its VF; a 1-CQ quota can never actuate.
	bad := TenancySpec{Version: 1, Tenants: []TenantSpec{
		{Name: "cramped", VFs: 1, Cores: 1, SQs: 1, RQs: 1, CQs: 1, Weight: 1},
	}}
	if err := tm.Apply(bad); err != nil {
		t.Fatal(err)
	}
	inn.Run()
	if tm.Reconciler().Converged() {
		t.Fatal("converged on an infeasible spec?")
	}
	snap := reg.Snapshot()
	if snap.Get("innova/ctrlplane/abandoned") != 1 {
		t.Fatal("infeasible episode not abandoned")
	}
	if snap.Get("innova/ctrlplane/actuator_errors") == 0 {
		t.Fatal("quota denials not surfaced as actuator errors")
	}
}

func TestClusterApplyReachesEveryManagedNode(t *testing.T) {
	c := NewCluster()
	a := c.AddInnova("a")
	b := c.AddInnova("b")
	tma := c.ManageTenants(a, 1)
	tmb := c.ManageTenants(b, 2)
	if err := c.Apply(tenancyTestSpec()); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if !tma.Reconciler().Converged() || !tmb.Reconciler().Converged() {
		t.Fatal("managed nodes did not all converge")
	}
	if err := c.AddTenant(TenantSpec{Name: "gamma", VFs: 1, SQs: 1, RQs: 1, CQs: 1, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if c.TenancySpec().Version != 2 {
		t.Fatalf("cluster spec version = %d, want 2", c.TenancySpec().Version)
	}
	if len(tmb.VFs("gamma")) != 1 {
		t.Fatal("AddTenant did not reach node b")
	}
}
