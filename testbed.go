package flexdriver

import (
	"fmt"

	"flexdriver/internal/faults"
	"flexdriver/internal/fld"
	"flexdriver/internal/fldsw"
	"flexdriver/internal/hostmem"
	"flexdriver/internal/nic"
	"flexdriver/internal/pcie"
	"flexdriver/internal/sim"
	"flexdriver/internal/swdriver"
	"flexdriver/internal/telemetry"
)

// Options is the internal carrier of testbed configuration. Callers
// configure it through functional options (WithFLD, WithLink,
// WithTelemetry, ...); zero-valued fields are replaced by the paper's
// defaults.
type Options struct {
	// FLD sizes the FlexDriver instance on Innova nodes.
	FLD FLDConfig
	// NIC tunes the adapter model.
	NIC NICParams
	// Driver tunes the CPU software-driver cost model.
	Driver DriverParams
	// Link is the PCIe configuration for host and FPGA fabric links.
	Link LinkConfig
	// NICLink is the NIC ASIC's attachment to the embedded switch. The
	// ConnectX-5 *contains* the Innova-2's PCIe switch (paper Figure 6),
	// so its internal attach matches the aggregate of the two external
	// x8 links; by default it is the Link with doubled lanes.
	NICLink LinkConfig
	// HostMemBytes sizes each host's DRAM (default 1 GiB).
	HostMemBytes uint64
	// Telemetry, when set, instruments every layer of the node into the
	// registry under `<node>/{pcie,nic,fld,swdriver}/...`. Nil (the
	// default) disables telemetry at zero cost to the hot paths.
	Telemetry *Registry
	// Faults, when set, attaches the deterministic fault-injection plan
	// to every layer the node builds (PCIe fabric, NIC, FLD, and — via
	// ConnectWire on the option-built pairs — the Ethernet wire). Nil
	// (the default) injects nothing.
	Faults *FaultPlan
	// Workers caps the scheduler's worker goroutines for Cluster runs:
	// 0 (the default) uses one worker per CPU, 1 forces the sequential
	// reference schedule, n > 1 uses n workers. Every setting produces
	// byte-identical results; workers change only wall-clock time.
	Workers int
	// Colocate builds every Cluster node and the switch on one shared
	// engine instead of one shard each. With no cross-shard conduits the
	// group runs the single shard straight to each deadline — no windows,
	// no barriers — making this the monolithic-engine baseline that
	// scheduler-overhead measurements (fldbench cluster_scaling vs
	// cluster_par1) compare against. Same-instant event interleaving
	// across nodes differs from the sharded schedule, so telemetry hashes
	// are comparable only within one mode.
	Colocate bool
}

// Option customizes testbed construction (the functional-options
// facade over the Options carrier).
type Option func(*Options)

// WithFLD sizes the FlexDriver instance on Innova nodes.
func WithFLD(cfg FLDConfig) Option { return func(o *Options) { o.FLD = cfg } }

// WithNIC tunes the adapter model.
func WithNIC(p NICParams) Option { return func(o *Options) { o.NIC = p } }

// WithDriver tunes the CPU software-driver cost model.
func WithDriver(p DriverParams) Option { return func(o *Options) { o.Driver = p } }

// WithLink sets the PCIe configuration for host and FPGA fabric links.
func WithLink(l LinkConfig) Option { return func(o *Options) { o.Link = l } }

// WithNICLink overrides the NIC ASIC's internal switch attachment
// (default: WithLink's configuration with doubled lanes).
func WithNICLink(l LinkConfig) Option { return func(o *Options) { o.NICLink = l } }

// WithHostMem sizes each host's DRAM in bytes (default 1 GiB).
func WithHostMem(bytes uint64) Option { return func(o *Options) { o.HostMemBytes = bytes } }

// WithTelemetry instruments the node(s) into reg: per-link TLP
// counters, per-queue doorbell/WQE/CQE counters, FLD compression and
// buffer-pool metrics, and CPU-driver costs, all under
// `<node>/...` paths. Enable reg's flight recorder to also capture
// per-TLP events for Chrome-trace export.
func WithTelemetry(reg *Registry) Option { return func(o *Options) { o.Telemetry = reg } }

// WithFaults attaches a fault-injection plan: the plan's hooks are
// installed on every fabric/NIC/FLD the testbed builds (and on the wire
// for NewRemotePair), and the plan is bound to the engine clock so its
// Start/Stop window and link-flap schedule run on simulated time. One
// plan may serve several nodes; they share its seeded random stream.
func WithFaults(p *FaultPlan) Option { return func(o *Options) { o.Faults = p } }

// WithParallel toggles the parallel scheduler for Cluster runs. Off
// forces the sequential reference schedule (one worker); on restores
// the default of one worker per CPU. Results are byte-identical either
// way — sequential mode exists as the determinism reference and for
// single-core profiling.
func WithParallel(on bool) Option {
	return func(o *Options) {
		if on {
			o.Workers = 0
		} else {
			o.Workers = 1
		}
	}
}

// WithWorkers pins the scheduler's worker count for Cluster runs
// (0 = one per CPU, 1 = sequential).
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithColocated(true) racks every cluster node and the switch on one
// shared engine — the monolithic baseline for scheduler-overhead
// measurement. See Options.Colocate for the determinism caveat.
func WithColocated(on bool) Option { return func(o *Options) { o.Colocate = on } }

// WithOptions replaces the whole carrier at once — an escape hatch for
// callers that build an Options value programmatically.
func WithOptions(full Options) Option { return func(o *Options) { *o = full } }

// buildOptions folds functional options into a defaulted carrier.
func buildOptions(opts []Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o.withDefaults()
}

func (o Options) withDefaults() Options {
	if o.FLD.NumTxQueues == 0 {
		o.FLD = fld.DefaultConfig()
	}
	if o.NIC.SQWindow == 0 {
		o.NIC = nic.DefaultParams()
	}
	if o.Driver.DoorbellBatch == 0 {
		o.Driver = swdriver.DefaultParams()
	}
	if o.Link.Lanes == 0 {
		o.Link = pcie.Gen3x8()
	}
	if o.NICLink.Lanes == 0 {
		o.NICLink = o.Link
		o.NICLink.Lanes *= 2
	}
	if o.HostMemBytes == 0 {
		o.HostMemBytes = 1 << 30
	}
	return o
}

// wireTelemetry binds the registry to the engine clock and attaches
// per-layer scopes under the node's name. Safe to call with a nil
// registry (telemetry disabled).
func wireTelemetry(reg *telemetry.Registry, eng *Engine, name string,
	fab *pcie.Fabric, n *nic.NIC, f *fld.FLD, drv *swdriver.Driver) {
	if reg == nil {
		return
	}
	reg.Bind(eng.Now)
	node := reg.Scope(name)
	fab.SetTelemetry(node.Scope("pcie"))
	n.SetTelemetry(node.Scope("nic"))
	if f != nil {
		f.SetTelemetry(node.Scope("fld"))
	}
	if drv != nil {
		drv.SetTelemetry(node.Scope("swdriver"))
	}
}

// wireFaults binds the fault plan (if any) to the engine clock and
// attaches its hooks to the node's layers, including the crash–restart
// failure domains (each Attach is a no-op for disabled classes, and
// disabled classes consume no stream ordinals, so plans without crash
// faults reproduce their pre-crash schedules exactly).
func wireFaults(o Options, eng *Engine, fab *pcie.Fabric, n *nic.NIC, f *fld.FLD, drv *swdriver.Driver) {
	p := o.Faults
	if p == nil {
		return
	}
	p.Bind(eng)
	if o.Telemetry != nil {
		p.SetTelemetry(o.Telemetry.Scope("faults"))
	}
	p.AttachFabric(fab)
	p.AttachNIC(n)
	if f != nil {
		p.AttachFLD(f)
	}
	p.AttachNICFLR(eng, nicFLRDomain{n})
	if f != nil {
		p.AttachFLDReset(eng, f)
	}
	if drv != nil {
		p.AttachDriverCrash(eng, drv)
	}
	comps := []faults.Crashable{n}
	if f != nil {
		comps = append(comps, f)
	}
	if drv != nil {
		comps = append(comps, drv)
	}
	p.AttachNodeCrash(eng, comps...)
}

// nicFLRDomain adapts a NIC to the FLR fault class: the function drops
// off the bus for the downtime window (a crash), and completing the
// reset leaves every ring cleanly re-initialized rather than errored —
// that's what distinguishes an FLR from a power loss.
type nicFLRDomain struct{ n *nic.NIC }

func (x nicFLRDomain) Crash() { x.n.Crash() }
func (x nicFLRDomain) Restart() {
	x.n.Restart()
	x.n.FLR()
}

// Node is the execution handle every testbed node embeds: the node's
// shard engine, its name, and — when the node was built by a Cluster —
// the owning cluster. Per-node work (scheduling callbacks, reading the
// local clock) goes through the node's engine; execution (Run/RunUntil)
// delegates to the cluster's group scheduler when there is one, so
// node.Run() on a clustered node drives the whole topology, exactly as
// the redesigned Cluster.Run does.
type Node struct {
	eng  *Engine
	cl   *Cluster
	name string
}

// Engine returns the node's shard engine. Schedule node-local events
// here; events that coordinate across nodes belong in Cluster.Control.
func (n *Node) Engine() *Engine { return n.eng }

// Name returns the node name — the telemetry scope its counters
// register beneath.
func (n *Node) Name() string { return n.name }

// Cluster returns the owning cluster, or nil for standalone nodes.
func (n *Node) Cluster() *Cluster { return n.cl }

// At schedules fn at absolute time t on the node's shard.
func (n *Node) At(t Time, fn func()) { n.eng.At(t, fn) }

// Now returns the node's virtual time (the cluster's, when clustered).
func (n *Node) Now() Time {
	if n.cl != nil {
		return n.cl.Now()
	}
	return n.eng.Now()
}

// Run drives the simulation to quiescence: the whole cluster for
// clustered nodes, the private engine for standalone ones.
func (n *Node) Run() {
	if n.cl != nil {
		n.cl.Run()
		return
	}
	n.eng.Run()
}

// RunUntil drives the simulation through deadline (inclusive).
func (n *Node) RunUntil(deadline Time) {
	if n.cl != nil {
		n.cl.RunUntil(deadline)
		return
	}
	n.eng.RunUntil(deadline)
}

// Host is a plain server: CPU + DRAM + a ConnectX-class NIC, driven by
// the software poll-mode driver. It is the client side of the remote
// experiments and the CPU baseline of the local ones.
type Host struct {
	Node
	Fab *pcie.Fabric
	Mem *hostmem.Memory
	NIC *NIC
	Drv *Driver

	tel *telemetry.Registry
}

// Telemetry returns the registry the host was built with, or nil when
// telemetry is disabled.
func (h *Host) Telemetry() *Registry { return h.tel }

// NewHost builds a host on the engine.
func NewHost(eng *Engine, name string, opts ...Option) *Host {
	return newHost(eng, name, buildOptions(opts))
}

// newHost builds a host from an already-folded carrier; the Cluster
// builder and NewRemotePair reach it directly so options fold exactly
// once per topology.
func newHost(eng *Engine, name string, o Options) *Host {
	fab := pcie.NewFabric(eng)
	mem := hostmem.New(name+"-dram", o.HostMemBytes)
	fab.Attach(mem, o.Link)
	n := nic.New(name+"-nic", eng, o.NIC)
	n.AttachPCIe(fab, o.NICLink)
	drv := swdriver.New(eng, fab, mem, n, o.Driver)
	wireTelemetry(o.Telemetry, eng, name, fab, n, nil, drv)
	wireFaults(o, eng, fab, n, nil, drv)
	return &Host{Node: Node{eng: eng, name: name}, Fab: fab, Mem: mem, NIC: n, Drv: drv, tel: o.Telemetry}
}

// Innova is an Innova-2-style SmartNIC node: host DRAM, a ConnectX-class
// NIC and an FPGA carrying FLD, all behind the NIC's embedded PCIe switch
// (paper Figure 6). The host CPU also has a software driver, used by
// local experiments as the load generator and CPU baseline.
type Innova struct {
	Node
	Fab *pcie.Fabric
	Mem *hostmem.Memory
	NIC *NIC
	FLD *FLD
	RT  *Runtime
	Drv *Driver

	tel     *telemetry.Registry
	faults  *faults.Plan
	link    LinkConfig // the node's configured PCIe link, reused by AddFLD
	numFLDs int
	flds    []*FLD // every core, for whole-node crash–restart
}

// Crash takes the whole Innova down — NIC, every FLD core, and the host
// driver — as one failure domain: the targeted-crash primitive behind
// the failover experiment (the fault plan's node.crash class drives the
// same components on a schedule instead). Balanced by Restart.
func (inn *Innova) Crash() {
	inn.NIC.Crash()
	for _, f := range inn.flds {
		f.Crash()
	}
	inn.Drv.Crash()
}

// Restart brings a crashed Innova back. Queue state does not silently
// heal: rings stay errored until driver-side recovery (the supervision
// ladder, fldsw watchdogs) reattaches them, exactly as after a real
// power cycle.
func (inn *Innova) Restart() {
	inn.NIC.Restart()
	for _, f := range inn.flds {
		f.Restart()
	}
	inn.Drv.Restart()
}

// NumFLDs returns how many FLD cores the node carries (1 plus AddFLD
// calls).
func (inn *Innova) NumFLDs() int { return inn.numFLDs }

// Telemetry returns the registry the node was built with, or nil when
// telemetry is disabled.
func (inn *Innova) Telemetry() *Registry { return inn.tel }

// NewInnova builds an Innova node on the engine.
func NewInnova(eng *Engine, name string, opts ...Option) *Innova {
	return newInnova(eng, name, buildOptions(opts))
}

// newInnova builds an Innova node from an already-folded carrier.
func newInnova(eng *Engine, name string, o Options) *Innova {
	fab := pcie.NewFabric(eng)
	mem := hostmem.New(name+"-dram", o.HostMemBytes)
	fab.Attach(mem, o.Link)
	n := nic.New(name+"-nic", eng, o.NIC)
	n.AttachPCIe(fab, o.NICLink)
	f := fld.New(eng, o.FLD)
	f.AttachPCIe(fab, o.Link)
	rt := fldsw.NewRuntime(eng, fab, mem, n, f)
	drv := swdriver.New(eng, fab, mem, n, o.Driver)
	wireTelemetry(o.Telemetry, eng, name, fab, n, f, drv)
	wireFaults(o, eng, fab, n, f, drv)
	return &Innova{Node: Node{eng: eng, name: name}, Fab: fab, Mem: mem, NIC: n, FLD: f, RT: rt, Drv: drv,
		tel: o.Telemetry, faults: o.Faults, link: o.Link, numFLDs: 1, flds: []*FLD{f}}
}

// AddFLD instantiates an additional FlexDriver core on the node's FPGA
// and wires a runtime for it — the §9 scaling strategy: "instantiating
// multiple FLD 'cores' within the accelerator, combined with NIC RSS
// offloads to balance the load on these cores".
func (inn *Innova) AddFLD(cfg FLDConfig) (*FLD, *Runtime) {
	f := fld.New(inn.eng, cfg)
	// A distinct device name keeps the extra core's PCIe-link telemetry
	// separate (matching its fld<N> scope) so per-port byte accounting
	// still reconciles.
	f.SetPCIeName(fmt.Sprintf("fld%d", inn.numFLDs))
	f.AttachPCIe(inn.Fab, inn.link)
	rt := fldsw.NewRuntime(inn.eng, inn.Fab, inn.Mem, inn.NIC, f)
	if inn.tel != nil {
		f.SetTelemetry(inn.tel.Scope(inn.name).Scope(fmt.Sprintf("fld%d", inn.numFLDs)))
	}
	inn.numFLDs++
	inn.flds = append(inn.flds, f)
	if inn.faults != nil {
		inn.faults.AttachFLD(f)
		inn.faults.AttachFLDReset(inn.eng, f)
	}
	return f, rt
}

// ConnectWire cables two NICs back to back.
func ConnectWire(a, b *NIC, rate BitRate, latency Duration) *Wire {
	return nic.ConnectWire(a, b, rate, latency)
}

// RemotePair is the paper's remote testbed: a client host with a
// ConnectX-4-class NIC cabled to an Innova-2 server at 25 GbE. Its
// embedded Node runs the pair (Run/RunUntil/Now/Engine).
type RemotePair struct {
	Node
	Client *Host
	Server *Innova
	Wire   *Wire
}

// NewRemotePair builds the two-node remote testbed — the trivial
// Cluster: options fold once, both nodes build from the shared carrier,
// and the NICs are cabled back to back (no switch in the path). A
// point-to-point cable has no barrier seam, so both nodes share one
// shard engine. With WithTelemetry both register under their node names
// ("client", "server") in the shared registry.
func NewRemotePair(opts ...Option) *RemotePair {
	c := NewCluster(opts...)
	eng := c.group.NewEngine()
	client := c.buildHostOn(eng, "client")
	server := c.buildInnovaOn(eng, "server")
	w := nic.ConnectWire(client.NIC, server.NIC, 25*Gbps, 500*Nanosecond)
	if c.o.Faults != nil {
		c.o.Faults.AttachWire(w)
	}
	return &RemotePair{Node: Node{eng: eng, cl: c, name: "pair"}, Client: client, Server: server, Wire: w}
}

// NewLocalInnova builds the paper's local testbed: one Innova node whose
// host CPU exchanges traffic with the FPGA through the NIC's embedded
// switch (maximum throughput bounded by the 50 Gbps PCIe link).
func NewLocalInnova(opts ...Option) *Innova {
	eng := sim.NewEngine()
	return NewInnova(eng, "innova", opts...)
}
