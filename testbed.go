package flexdriver

import (
	"flexdriver/internal/fld"
	"flexdriver/internal/fldsw"
	"flexdriver/internal/hostmem"
	"flexdriver/internal/nic"
	"flexdriver/internal/pcie"
	"flexdriver/internal/sim"
	"flexdriver/internal/swdriver"
)

// Options configure testbed construction. The zero value is replaced by
// the paper's defaults.
type Options struct {
	// FLD sizes the FlexDriver instance on Innova nodes.
	FLD FLDConfig
	// NIC tunes the adapter model.
	NIC NICParams
	// Driver tunes the CPU software-driver cost model.
	Driver DriverParams
	// Link is the PCIe configuration for host and FPGA fabric links.
	Link LinkConfig
	// NICLink is the NIC ASIC's attachment to the embedded switch. The
	// ConnectX-5 *contains* the Innova-2's PCIe switch (paper Figure 6),
	// so its internal attach matches the aggregate of the two external
	// x8 links; by default it is the Link with doubled lanes.
	NICLink LinkConfig
	// HostMemBytes sizes each host's DRAM (default 1 GiB).
	HostMemBytes uint64
}

func (o Options) withDefaults() Options {
	if o.FLD.NumTxQueues == 0 {
		o.FLD = fld.DefaultConfig()
	}
	if o.NIC.SQWindow == 0 {
		o.NIC = nic.DefaultParams()
	}
	if o.Driver.DoorbellBatch == 0 {
		o.Driver = swdriver.DefaultParams()
	}
	if o.Link.Lanes == 0 {
		o.Link = pcie.Gen3x8()
	}
	if o.NICLink.Lanes == 0 {
		o.NICLink = o.Link
		o.NICLink.Lanes *= 2
	}
	if o.HostMemBytes == 0 {
		o.HostMemBytes = 1 << 30
	}
	return o
}

// Host is a plain server: CPU + DRAM + a ConnectX-class NIC, driven by
// the software poll-mode driver. It is the client side of the remote
// experiments and the CPU baseline of the local ones.
type Host struct {
	Eng *Engine
	Fab *pcie.Fabric
	Mem *hostmem.Memory
	NIC *NIC
	Drv *Driver
}

// NewHost builds a host on the engine.
func NewHost(eng *Engine, name string, o Options) *Host {
	o = o.withDefaults()
	fab := pcie.NewFabric(eng)
	mem := hostmem.New(name+"-dram", o.HostMemBytes)
	fab.Attach(mem, o.Link)
	n := nic.New(name+"-nic", eng, o.NIC)
	n.AttachPCIe(fab, o.NICLink)
	drv := swdriver.New(eng, fab, mem, n, o.Driver)
	return &Host{Eng: eng, Fab: fab, Mem: mem, NIC: n, Drv: drv}
}

// Innova is an Innova-2-style SmartNIC node: host DRAM, a ConnectX-class
// NIC and an FPGA carrying FLD, all behind the NIC's embedded PCIe switch
// (paper Figure 6). The host CPU also has a software driver, used by
// local experiments as the load generator and CPU baseline.
type Innova struct {
	Eng *Engine
	Fab *pcie.Fabric
	Mem *hostmem.Memory
	NIC *NIC
	FLD *FLD
	RT  *Runtime
	Drv *Driver
}

// NewInnova builds an Innova node on the engine.
func NewInnova(eng *Engine, name string, o Options) *Innova {
	o = o.withDefaults()
	fab := pcie.NewFabric(eng)
	mem := hostmem.New(name+"-dram", o.HostMemBytes)
	fab.Attach(mem, o.Link)
	n := nic.New(name+"-nic", eng, o.NIC)
	n.AttachPCIe(fab, o.NICLink)
	f := fld.New(eng, o.FLD)
	f.AttachPCIe(fab, o.Link)
	rt := fldsw.NewRuntime(eng, fab, mem, n, f)
	drv := swdriver.New(eng, fab, mem, n, o.Driver)
	return &Innova{Eng: eng, Fab: fab, Mem: mem, NIC: n, FLD: f, RT: rt, Drv: drv}
}

// AddFLD instantiates an additional FlexDriver core on the node's FPGA
// and wires a runtime for it — the §9 scaling strategy: "instantiating
// multiple FLD 'cores' within the accelerator, combined with NIC RSS
// offloads to balance the load on these cores".
func (inn *Innova) AddFLD(cfg FLDConfig) (*FLD, *Runtime) {
	f := fld.New(inn.Eng, cfg)
	f.AttachPCIe(inn.Fab, pcie.Gen3x8())
	rt := fldsw.NewRuntime(inn.Eng, inn.Fab, inn.Mem, inn.NIC, f)
	return f, rt
}

// ConnectWire cables two NICs back to back.
func ConnectWire(a, b *NIC, rate BitRate, latency Duration) *Wire {
	return nic.ConnectWire(a, b, rate, latency)
}

// RemotePair is the paper's remote testbed: a client host with a
// ConnectX-4-class NIC cabled to an Innova-2 server at 25 GbE.
type RemotePair struct {
	Eng    *Engine
	Client *Host
	Server *Innova
	Wire   *Wire
}

// NewRemotePair builds the two-node remote testbed.
func NewRemotePair(o Options) *RemotePair {
	eng := sim.NewEngine()
	client := NewHost(eng, "client", o)
	server := NewInnova(eng, "server", o)
	w := nic.ConnectWire(client.NIC, server.NIC, 25*Gbps, 500*Nanosecond)
	return &RemotePair{Eng: eng, Client: client, Server: server, Wire: w}
}

// NewLocalInnova builds the paper's local testbed: one Innova node whose
// host CPU exchanges traffic with the FPGA through the NIC's embedded
// switch (maximum throughput bounded by the 50 Gbps PCIe link).
func NewLocalInnova(o Options) *Innova {
	eng := sim.NewEngine()
	return NewInnova(eng, "innova", o)
}
