package flexdriver_test

// Chaos regression: the FLD-E echo must survive a heavy deterministic
// fault storm — and pass every recovery invariant — for several
// distinct seeds. A failure prints the seed and the full report so the
// identical storm can be replayed with
//
//	go run ./cmd/fldreport -exp chaos -seed <seed> -faults heavy
//
// The test lives outside package flexdriver so it exercises the same
// public facade path the CLI does.

import (
	"testing"

	"flexdriver"
	"flexdriver/internal/exps"
)

func TestChaosAcrossSeeds(t *testing.T) {
	const window = 300 * flexdriver.Microsecond
	for _, seed := range []int64{1, 2, 3, 4, 5, 42, 1234} {
		r := exps.Chaos(seed, "heavy", window)
		if !r.Passed() {
			t.Errorf("chaos failed for seed %d:\n%s", seed, r.String())
		}
	}
}

// TestChaosZeroFaultsLossless pins the loss bound's teeth: with an
// empty fault config the same storm harness must deliver every frame.
func TestChaosZeroFaultsLossless(t *testing.T) {
	r := exps.Chaos(1, "wire.loss=0", 300*flexdriver.Microsecond)
	if !r.Passed() {
		t.Fatalf("fault-free chaos run not lossless:\n%s", r.String())
	}
}
