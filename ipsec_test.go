package flexdriver

import (
	"bytes"
	"testing"

	"flexdriver/internal/accel/defrag"
	"flexdriver/internal/netpkt"
	"flexdriver/internal/swdriver"
)

// TestIPSecDecryptThenDefrag is the strongest form of the paper's
// "all-or-nothing offloads" argument (§2.1, §7): an area-demanding NIC
// offload (inline IPSec ESP decryption) runs BEFORE the accelerator, the
// FLD-attached defragmenter runs in the middle, and steering resumes
// afterwards — impossible for a bump-in-the-wire design, where the
// accelerator sees packets before the NIC ASIC can decrypt them.
//
// Traffic pattern: pre-fragmented inner packets, each fragment separately
// ESP-encrypted (the mobile pre-fragmentation pattern), arriving on a
// 25 GbE port.
func TestIPSecDecryptThenDefrag(t *testing.T) {
	rp := NewRemotePair()
	srv := rp.Server
	esw := srv.NIC.ESwitch()

	sa := &netpkt.ESPSA{SPI: 0xABCD, Key: [16]byte{42, 1, 2}, Salt: [4]byte{7, 7, 7, 7}}

	srv.RT.CreateEthTxQueue(0, nil)
	afu := defrag.NewAFU(srv.FLD, srv.Engine(), 10*Millisecond, 1024)
	ecp := NewEControlPlane(srv.RT)

	const appTable = 40
	// Table 0: ESP traffic -> NIC inline decrypt offload -> table 20.
	esp := uint8(netpkt.ProtoESP)
	esw.AddRule(0, Rule{
		Match:  Match{Proto: &esp},
		Action: Action{ESPDecrypt: sa, Count: "esp-decrypt", ToTable: intptr(20)},
	})
	esw.AddRule(0, Rule{Action: Action{ToTable: intptr(20)}})
	// Table 20: fragments detour through the FLD defragmenter.
	ecp.InstallAccelerate(AccelerateSpec{
		Table:     20,
		Match:     Match{IsFragment: boolptr(true)},
		Context:   9,
		NextTable: appTable,
	})
	esw.AddRule(20, Rule{Action: Action{ToTable: intptr(appTable)}})
	srv.RT.Start()

	// Application queue on the server host.
	app := srv.Drv.NewEthPort(swdriver.EthPortConfig{TxEntries: 128, RxEntries: 128})
	esw.AddRule(appTable, Rule{Action: Action{ToRQ: app.RQ()}})
	var delivered [][]byte
	app.OnReceive = func(frame []byte, md swdriver.RxMeta) { delivered = append(delivered, frame) }

	// Client: 20 large packets, each fragmented then per-fragment
	// ESP-encrypted.
	port := rp.Client.Drv.NewEthPort(swdriver.EthPortConfig{TxEntries: 256, RxEntries: 256})
	seq := uint32(0)
	var wantPayloads [][]byte
	for i := 0; i < 20; i++ {
		inner := buildUDPFrame(1, 2, uint16(30000+i), 5201, 1400)
		_, ipPkt, err := netpkt.ParseEth(inner)
		if err != nil {
			t.Fatal(err)
		}
		_, payload, _ := netpkt.ParseIPv4(ipPkt)
		wantPayloads = append(wantPayloads, append([]byte(nil), payload...))

		frags, err := netpkt.FragmentIPv4(ipPkt, 1000)
		if err != nil {
			t.Fatal(err)
		}
		for _, frag := range frags {
			seq++
			enc, err := netpkt.EncryptESP(sa, seq, netpkt.IPFrom(1), netpkt.IPFrom(2), frag)
			if err != nil {
				t.Fatal(err)
			}
			eth := netpkt.Eth{Dst: netpkt.MACFrom(2), Src: netpkt.MACFrom(1),
				EtherType: netpkt.EtherTypeIPv4}
			port.Send(append(eth.Marshal(nil), enc...))
		}
	}
	rp.Run()

	if got := esw.Counters["esp-decrypt"]; got != int64(seq) {
		t.Fatalf("NIC decrypted %d/%d ESP packets", got, seq)
	}
	if afu.Reassembler().Completed != 20 {
		t.Fatalf("defragmenter completed %d/20 (drops %v)",
			afu.Reassembler().Completed, srv.NIC.Stats.Drops)
	}
	if len(delivered) != 20 {
		t.Fatalf("application received %d/20", len(delivered))
	}
	for i, frame := range delivered {
		_, ipb, err := netpkt.ParseEth(frame)
		if err != nil {
			t.Fatal(err)
		}
		h, payload, err := netpkt.ParseIPv4(ipb)
		if err != nil || h.IsFragment() {
			t.Fatalf("packet %d not fully reassembled: %v", i, err)
		}
		if !bytes.Equal(payload, wantPayloads[i]) {
			t.Fatalf("packet %d payload corrupted through decrypt+defrag", i)
		}
	}
}

// TestIPSecForgedPacketsDropped: authentication failures never reach the
// accelerator or the application.
func TestIPSecForgedPacketsDropped(t *testing.T) {
	rp := NewRemotePair()
	srv := rp.Server
	esw := srv.NIC.ESwitch()
	sa := &netpkt.ESPSA{SPI: 0x77, Key: [16]byte{1}, Salt: [4]byte{2}}
	srv.RT.CreateEthTxQueue(0, nil)
	defrag.NewAFU(srv.FLD, srv.Engine(), Millisecond, 64)
	esp := uint8(netpkt.ProtoESP)
	app := srv.Drv.NewEthPort(swdriver.EthPortConfig{TxEntries: 64, RxEntries: 64})
	esw.AddRule(0, Rule{Match: Match{Proto: &esp},
		Action: Action{ESPDecrypt: sa, ToRQ: app.RQ()}})
	srv.RT.Start()
	got := 0
	app.OnReceive = func([]byte, swdriver.RxMeta) { got++ }

	port := rp.Client.Drv.NewEthPort(swdriver.EthPortConfig{TxEntries: 64, RxEntries: 64})
	attacker := &netpkt.ESPSA{SPI: 0x77, Key: [16]byte{0xEE}, Salt: [4]byte{2}}
	inner := buildUDPFrame(1, 2, 1, 2, 100)
	_, ipPkt, _ := netpkt.ParseEth(inner)
	forged, err := netpkt.EncryptESP(attacker, 1, netpkt.IPFrom(1), netpkt.IPFrom(2), ipPkt)
	if err != nil {
		t.Fatal(err)
	}
	eth := netpkt.Eth{Dst: netpkt.MACFrom(2), Src: netpkt.MACFrom(1), EtherType: netpkt.EtherTypeIPv4}
	port.Send(append(eth.Marshal(nil), forged...))
	rp.Run()

	if got != 0 {
		t.Fatal("forged ESP packet delivered")
	}
	if srv.NIC.Stats.Drops["esp-auth-failed"] != 1 {
		t.Fatalf("drops: %v", srv.NIC.Stats.Drops)
	}
}

func intptr(v int) *int    { return &v }
func boolptr(v bool) *bool { return &v }
