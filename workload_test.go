package flexdriver

import (
	"fmt"
	"testing"

	"flexdriver/internal/sim"
	"flexdriver/internal/swdriver"
)

// TestAggregatedEquivalence pins the aggregation model's core claim: K
// clients folded into one AggregatedClients source emit exactly the
// frames, at exactly the instants, that K discrete open-loop senders
// with the same per-client seed streams would — for both Poisson
// singles and bursty trains. Offered load is a pure function of the
// arrival streams (open loop), so exact send-time equality is the
// strongest form of offered-load equivalence.
func TestAggregatedEquivalence(t *testing.T) {
	const K = 7
	const seedBase int64 = 4242
	stop := 50 * Microsecond
	mean := 900 * Nanosecond

	discrete := func(burstFn func(ci int, rng *sim.Rand) int) [][]Time {
		cl := NewCluster()
		sink := cl.AddHost("sink")
		times := make([][]Time, K)
		for ci := 0; ci < K; ci++ {
			h := cl.AddHost(fmt.Sprintf("c%d", ci))
			port := h.Drv.NewEthPort(swdriver.EthPortConfig{TxEntries: 256, RxEntries: 256})
			frame := clusterUDPFrame(h.NIC, sink.NIC, uint16(4000+ci), 7777, 256)
			rng := sim.NewRand(seedBase + int64(ci))
			burst := burstFn(ci, rng)
			gap := mean * Duration(burst)
			ci := ci
			heng := h.Engine()
			var tick func()
			tick = func() {
				if heng.Now() >= stop {
					return
				}
				for b := 0; b < burst; b++ {
					times[ci] = append(times[ci], heng.Now())
					port.Send(append([]byte(nil), frame...))
				}
				heng.After(rng.Exp(gap), tick)
			}
			heng.After(rng.Exp(gap), tick)
		}
		cl.Run()
		return times
	}

	aggregated := func(burstFn func(ci int, rng *sim.Rand) int) ([][]Time, *AggregatedClients) {
		cl := NewCluster()
		sink := cl.AddHost("sink")
		times := make([][]Time, K)
		var src *AggregatedClients
		src = cl.AddAggregatedClients("agg", AggregatedClientsConfig{
			Clients:    K,
			StreamSeed: seedBase,
			Stop:       stop,
			Setup: func(h *Host, ci int, rng *sim.Rand) ClientSetup {
				return ClientSetup{
					Flows: [][]byte{clusterUDPFrame(h.NIC, sink.NIC, uint16(5000+ci), 7777, 256)},
					Mean:  mean,
					Burst: burstFn(ci, rng),
				}
			},
			OnSend: func(ci int, _ []byte) {
				times[ci] = append(times[ci], src.Host.Engine().Now())
			},
		})
		cl.Run()
		return times, src
	}

	for _, tc := range []struct {
		name  string
		burst func(ci int, rng *sim.Rand) int
	}{
		{"poisson", func(int, *sim.Rand) int { return 1 }},
		// The scenario fuzzer's bursty shape: the train length comes off
		// the client's own arrival stream before any gap draw.
		{"bursty", func(_ int, rng *sim.Rand) int { return 8 + rng.Intn(25) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := discrete(tc.burst)
			got, src := aggregated(tc.burst)
			var total int64
			for ci := 0; ci < K; ci++ {
				if len(got[ci]) != len(want[ci]) {
					t.Fatalf("client %d sent %d frames aggregated vs %d discrete",
						ci, len(got[ci]), len(want[ci]))
				}
				if len(want[ci]) == 0 {
					t.Fatalf("client %d sent nothing; the workload is miscalibrated", ci)
				}
				for i := range want[ci] {
					if got[ci][i] != want[ci][i] {
						t.Fatalf("client %d frame %d at %v aggregated vs %v discrete",
							ci, i, got[ci][i], want[ci][i])
					}
				}
				if src.Sent(ci) != int64(len(want[ci])) {
					t.Fatalf("source counts %d frames for client %d, bookkeeping saw %d",
						src.Sent(ci), ci, len(want[ci]))
				}
				total += src.Sent(ci)
			}
			if src.TotalSent() != total {
				t.Fatalf("TotalSent %d != sum of per-client counts %d", src.TotalSent(), total)
			}
		})
	}
}

// TestAggregatedClientsTelemetry checks the source's attribution
// counters land in the registry under the host's scope.
func TestAggregatedClientsTelemetry(t *testing.T) {
	reg := NewRegistry()
	cl := NewCluster(WithTelemetry(reg))
	sink := cl.AddHost("sink")
	src := cl.AddAggregatedClients("agg", AggregatedClientsConfig{
		Clients:    3,
		StreamSeed: 7,
		Stop:       20 * Microsecond,
		Setup: func(h *Host, ci int, _ *sim.Rand) ClientSetup {
			return ClientSetup{
				Flows: [][]byte{clusterUDPFrame(h.NIC, sink.NIC, uint16(4000+ci), 7777, 256)},
				Mean:  500 * Nanosecond,
			}
		},
	})
	cl.Run()
	snap := reg.Snapshot()
	if got := snap.Gauges["agg/clients/modeled"].Value; got != 3 {
		t.Errorf("agg/clients/modeled = %d, want 3", got)
	}
	if got := snap.Get("agg/clients/frames"); got != src.TotalSent() || got == 0 {
		t.Errorf("agg/clients/frames = %d, want %d (nonzero)", got, src.TotalSent())
	}
	if snap.Get("agg/clients/bytes") < src.TotalSent()*256 {
		t.Errorf("agg/clients/bytes undercounts: %d for %d frames",
			snap.Get("agg/clients/bytes"), src.TotalSent())
	}
}
